// Package report serialises mining results — the Table-1-style aggregated
// access areas — as human-readable text, CSV, or JSON, so downstream tools
// (spreadsheets, notebooks, dashboards) can consume the output of the
// pipeline without linking the library.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/core"
)

// Format selects an output encoding.
type Format string

const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(strings.ToLower(s)) {
	case Text:
		return Text, nil
	case CSV:
		return CSV, nil
	case JSON:
		return JSON, nil
	default:
		return "", fmt.Errorf("report: unknown format %q (text, csv, json)", s)
	}
}

// Options controls rendering.
type Options struct {
	// Top caps the number of clusters emitted (0 = all).
	Top int
	// Coverage includes the area/object coverage columns (meaningful only
	// after Result.AttachCoverage).
	Coverage bool
}

// Write renders the result in the chosen format.
func Write(w io.Writer, res *core.Result, format Format, opts Options) error {
	clusters := res.Clusters
	if opts.Top > 0 && len(clusters) > opts.Top {
		clusters = clusters[:opts.Top]
	}
	switch format {
	case CSV:
		return writeCSV(w, res, clusters, opts)
	case JSON:
		return writeJSON(w, res, clusters, opts)
	default:
		return writeText(w, res, clusters, opts)
	}
}

func writeText(w io.Writer, res *core.Result, clusters []*aggregate.Summary, opts Options) error {
	if st := res.PipelineStats; st != nil {
		fmt.Fprintf(w, "statements: %d, extracted: %d (%.2f%%), distinct areas: %d\n",
			st.Total, st.Extracted, 100*st.Coverage(), res.DistinctAreas)
	}
	fmt.Fprintf(w, "clusters: %d, noise queries: %d\n\n", len(res.Clusters), res.NoiseQueries)
	header := fmt.Sprintf("%-4s %-9s %-7s", "id", "queries", "users")
	if opts.Coverage {
		header += fmt.Sprintf(" %-9s %-9s", "area-cov", "obj-cov")
	}
	fmt.Fprintln(w, header+" access area")
	for _, c := range clusters {
		line := fmt.Sprintf("%-4d %-9d %-7d", c.ID, c.Cardinality, c.UserCount)
		if opts.Coverage {
			line += fmt.Sprintf(" %-9.3f %-9.3f", c.AreaCoverage, c.ObjectCoverage)
		}
		fmt.Fprintln(w, line+" "+c.Expr())
	}
	return nil
}

func writeCSV(w io.Writer, _ *core.Result, clusters []*aggregate.Summary, opts Options) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "queries", "users", "relations", "access_area"}
	if opts.Coverage {
		header = append(header, "area_coverage", "object_coverage")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range clusters {
		row := []string{
			strconv.Itoa(c.ID),
			strconv.Itoa(c.Cardinality),
			strconv.Itoa(c.UserCount),
			strings.Join(c.Relations, "|"),
			c.Expr(),
		}
		if opts.Coverage {
			row = append(row, fcov(c.AreaCoverage), fcov(c.ObjectCoverage))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fcov(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'f', 6, 64)
}

// jsonCluster is the stable JSON shape of one cluster.
type jsonCluster struct {
	ID              int                 `json:"id"`
	Queries         int                 `json:"queries"`
	Users           int                 `json:"users"`
	Relations       []string            `json:"relations"`
	AccessArea      string              `json:"access_area"`
	Box             map[string][2]*f64  `json:"box,omitempty"`
	Categorical     map[string][]string `json:"categorical,omitempty"`
	JoinPredicates  []string            `json:"join_predicates,omitempty"`
	Representatives []string            `json:"representative_queries,omitempty"`
	AreaCoverage    *f64                `json:"area_coverage,omitempty"`
	ObjectCoverage  *f64                `json:"object_coverage,omitempty"`
}

// f64 marshals non-finite floats as null.
type f64 float64

func (v f64) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

func pf(v float64) *f64 {
	x := f64(v)
	return &x
}

type jsonReport struct {
	Statements     int           `json:"statements"`
	Extracted      int           `json:"extracted"`
	Coverage       float64       `json:"extraction_coverage"`
	DistinctAreas  int           `json:"distinct_areas"`
	NoiseQueries   int           `json:"noise_queries"`
	TotalClusters  int           `json:"total_clusters"`
	Clusters       []jsonCluster `json:"clusters"`
	ChosenEps      float64       `json:"eps"`
	Contradictions int           `json:"contradictory_areas"`
}

func writeJSON(w io.Writer, res *core.Result, clusters []*aggregate.Summary, opts Options) error {
	out := jsonReport{
		DistinctAreas:  res.DistinctAreas,
		NoiseQueries:   res.NoiseQueries,
		TotalClusters:  len(res.Clusters),
		ChosenEps:      res.ChosenEps,
		Contradictions: res.ContradictoryAreas,
	}
	if st := res.PipelineStats; st != nil {
		out.Statements = st.Total
		out.Extracted = st.Extracted
		out.Coverage = st.Coverage()
	}
	for _, c := range clusters {
		jc := jsonCluster{
			ID: c.ID, Queries: c.Cardinality, Users: c.UserCount,
			Relations: c.Relations, AccessArea: c.Expr(),
			Categorical: c.Categorical, JoinPredicates: c.JoinPreds,
			Representatives: c.Representatives,
			Box:             make(map[string][2]*f64),
		}
		for _, col := range c.Box.Dims() {
			iv := c.Box.Get(col)
			lo, hi := pf(iv.Lo), pf(iv.Hi)
			jc.Box[col] = [2]*f64{lo, hi}
		}
		if opts.Coverage {
			jc.AreaCoverage = pf(c.AreaCoverage)
			jc.ObjectCoverage = pf(c.ObjectCoverage)
		}
		out.Clusters = append(out.Clusters, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
