//go:build linux

package wal

import (
	"os"
	"syscall"
)

// syncFile makes a file's appended data durable. On Linux fdatasync skips
// the pure-metadata journal commit (timestamps); the metadata needed to read
// the appended data — the file size — is still flushed, and the entry
// framing tolerates a torn tail, so the recovery contract is unchanged.
func syncFile(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
