package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/qlog"
)

// mkRecord builds a deterministic record; fp 0 every 7th marks a
// parse-failed statement.
func mkRecord(i int) (qlog.Record, uint64) {
	fp := uint64(1 + i%5)
	if i%7 == 3 {
		fp = 0
	}
	return qlog.Record{
		Seq:  i,
		Time: int64(i * 4),
		User: fmt.Sprintf("u%d", i%3),
		SQL:  fmt.Sprintf("SELECT %d FROM PhotoObj", i%5),
	}, fp
}

func appendN(t *testing.T, w *WAL, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		rec, fp := mkRecord(i)
		if _, err := w.Append(rec, fp); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func collectReplay(t *testing.T, w *WAL, from uint64) []qlog.Record {
	t.Helper()
	var got []qlog.Record
	if err := w.Replay(from, func(rec qlog.Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	appendN(t, w, 0, n)
	if off := w.NextOffset(); off != n {
		t.Fatalf("NextOffset = %d, want %d", off, n)
	}
	if off := w.DurableOffset(); off != n {
		t.Fatalf("DurableOffset = %d, want %d", off, n)
	}
	got := collectReplay(t, w, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, rec := range got {
		want, _ := mkRecord(i)
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	// Replay from a mid offset delivers exactly the tail.
	tail := collectReplay(t, w, 150)
	if len(tail) != 50 || tail[0].Seq != 150 {
		t.Fatalf("tail replay: got %d records starting seq %d", len(tail), tail[0].Seq)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesOffsets(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 120)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if off := w2.NextOffset(); off != 120 {
		t.Fatalf("reopened NextOffset = %d, want 120", off)
	}
	appendN(t, w2, 120, 200)
	got := collectReplay(t, w2, 0)
	if len(got) != 200 {
		t.Fatalf("replayed %d, want 200", len(got))
	}
	for i, rec := range got {
		want, _ := mkRecord(i)
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	// Small SegmentBytes must have rotated: sealed segments carry footers.
	segs := w2.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected rotation with 2 KiB segments, got %d segments", len(segs))
	}
	for _, s := range segs[:len(segs)-1] {
		if !s.Sealed {
			t.Fatalf("segment %s not sealed", s.Path)
		}
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-write: append garbage half-entry to the active
	// segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	last := filepath.Join(dir, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with torn tail: %v", err)
	}
	defer w2.Close()
	if off := w2.NextOffset(); off != 50 {
		t.Fatalf("NextOffset after torn-tail recovery = %d, want 50", off)
	}
	// The WAL must still accept appends after truncation.
	appendN(t, w2, 50, 60)
	if got := collectReplay(t, w2, 0); len(got) != 60 {
		t.Fatalf("replayed %d, want 60", len(got))
	}
}

func TestBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the middle of the file.
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after bit flip: %v", err)
	}
	defer w2.Close()
	// The corrupt entry and everything after it is gone; the prefix stays.
	if off := w2.NextOffset(); off >= 10 {
		t.Fatalf("NextOffset = %d after bit flip, want < 10", off)
	}
}

func TestReadWindowIndexSkips(t *testing.T) {
	dir := t.TempDir()
	// Window-rotate every 100 time units: records land in distinct segments
	// by time.
	w, err := Open(dir, Options{SegmentWindow: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 0, 200) // times 0..796, so ~8 segments
	var got []qlog.Record
	st, err := w.ReadWindow(100, 200, nil, func(rec qlog.Record, fp uint64) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Times in [100,200) are records 25..49.
	if len(got) != 25 {
		t.Fatalf("window records = %d, want 25", len(got))
	}
	for i, rec := range got {
		if rec.Seq != 25+i {
			t.Fatalf("window record %d has seq %d", i, rec.Seq)
		}
	}
	if st.SegmentsSkipped == 0 {
		t.Fatalf("index skipped no segments: %+v", st)
	}
	all, err := w.ReadWindowScanAll(100, 200, nil, func(qlog.Record, uint64) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if all.SegmentsSkipped != 0 || all.Records != st.Records {
		t.Fatalf("scan-all mismatch: %+v vs %+v", all, st)
	}
}

func TestReadWindowFingerprintFilter(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentWindow: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Records where i%5==2 get fp 3 (except i%7==3 parse-fails).
	appendN(t, w, 0, 200)
	var got int
	_, err = w.ReadWindow(0, 1<<40, []uint64{3}, func(rec qlog.Record, fp uint64) error {
		if fp != 3 {
			t.Fatalf("filter leaked fp %d", fp)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 200; i++ {
		if _, fp := mkRecord(i); fp == 3 {
			want++
		}
	}
	if got != want {
		t.Fatalf("fingerprint filter got %d records, want %d", got, want)
	}
}

func TestCompactionLossless(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 300)

	before := make(map[string]int) // keyed record -> count, fp==0 excluded
	_, err = w.ReadWindow(0, 1<<40, nil, func(rec qlog.Record, fp uint64) error {
		if fp != 0 {
			before[fmt.Sprintf("%d|%d|%s|%s|%d", rec.Seq, rec.Time, rec.User, rec.SQL, fp)]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	w.SetCompactFloor(w.NextOffset())
	st, err := w.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Segments == 0 || st.Deduped == 0 || st.Dropped == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
	if st.BytesOut >= st.BytesIn {
		t.Fatalf("compaction grew the log: %+v", st)
	}

	// Compaction only touches cold (sealed) segments — the active segment
	// keeps its parse-failed records, so compare the fp!=0 population.
	after := make(map[string]int)
	_, err = w.ReadWindow(0, 1<<40, nil, func(rec qlog.Record, fp uint64) error {
		if fp != 0 {
			after[fmt.Sprintf("%d|%d|%s|%s|%d", rec.Seq, rec.Time, rec.User, rec.SQL, fp)]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("compaction lost records: before %d keys, after %d keys", len(before), len(after))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Compacted segments reopen via their footers and still read back whole.
	w2, err := Open(dir, Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if off := w2.NextOffset(); off != 300 {
		t.Fatalf("NextOffset after compacted reopen = %d, want 300", off)
	}
	reopened := make(map[string]int)
	_, err = w2.ReadWindow(0, 1<<40, nil, func(rec qlog.Record, fp uint64) error {
		if fp != 0 {
			reopened[fmt.Sprintf("%d|%d|%s|%s|%d", rec.Seq, rec.Time, rec.User, rec.SQL, fp)]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, reopened) {
		t.Fatalf("compacted reopen lost records")
	}
}

func TestConcurrentAppendSync(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const (
		writers = 8
		perW    = 50
	)
	fsyncsBefore := fsyncTotal.Value()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				rec, fp := mkRecord(g*perW + i)
				if _, err := w.Append(rec, fp); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
			if err := w.Sync(); err != nil {
				t.Errorf("Sync: %v", err)
			}
		}(g)
	}
	wg.Wait()
	if got := collectReplay(t, w, 0); len(got) != writers*perW {
		t.Fatalf("replayed %d, want %d", len(got), writers*perW)
	}
	// Far fewer fsyncs than records proves group commit coalesced them.
	if d := fsyncTotal.Value() - fsyncsBefore; d >= int64(writers*perW) {
		t.Fatalf("fsyncs (%d) not coalesced below append count", d)
	}
}

func TestSealedTrailerFastPath(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := listSegments(dir)
	if len(names) < 2 {
		t.Fatalf("want rotation, got %d segments", len(names))
	}
	ft, ok, err := readFooterTrailer(filepath.Join(dir, names[0]))
	if err != nil || !ok {
		t.Fatalf("trailer not readable: ok=%v err=%v", ok, err)
	}
	if ft.span == 0 || len(ft.fps) == 0 {
		t.Fatalf("empty footer: %+v", ft)
	}
}
