package shard

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/skyserver"
)

func testDB() *memdb.DB {
	return skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 400, Seed: 1})
}

func seededStats(db *memdb.DB) *schema.Stats {
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	return stats
}

func synthRecords(n int, seed int64) []qlog.Record {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: n, Seed: seed})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return recs
}

func ndjsonBody(recs []qlog.Record) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		_ = enc.Encode(&recs[i])
	}
	return &buf
}

// postUntilAccepted replays one burst, re-sending the tail a 429 did not
// admit — the loggen/serveperf client behaviour.
func postUntilAccepted(t *testing.T, url string, recs []qlog.Record) {
	t.Helper()
	for len(recs) > 0 {
		resp, err := http.Post(url+"/ingest", "application/x-ndjson", ndjsonBody(recs))
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		var reply struct {
			Accepted int    `json:"accepted"`
			Error    string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatalf("ingest reply: %v", err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			return
		case http.StatusTooManyRequests:
			recs = recs[reply.Accepted:]
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("ingest status %d (%s)", resp.StatusCode, reply.Error)
		}
	}
}

func mustFlush(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// newInProcessCluster builds the in-process topology the shard-smoke gate
// runs: n shard servers sharing one stats registry and one template cache
// behind a relation-set router.
func newInProcessCluster(t *testing.T, n int, db *memdb.DB, routerStatePath string) *Coordinator {
	t.Helper()
	stats := seededStats(db)
	tcache := &extract.TemplateCache{}
	router := NewRouter(n, skyserver.Schema(), 0, tcache, 0)
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		s, err := serve.NewServer(serve.Config{
			Miner:      core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: stats},
			Templates:  tcache,
			BatchSize:  64,
			EpochAreas: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = NewLocalNode("shard-"+string(rune('0'+i)), s)
	}
	coord, err := NewCoordinator(Config{
		Router:          router,
		Nodes:           nodes,
		QueueSize:       512,
		BatchSize:       64,
		Eps:             0.06,
		Coverage:        db,
		HealthInterval:  time.Second,
		RouterStatePath: routerStatePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// The shard-smoke gate: a 4-shard in-process cluster ingesting over HTTP
// must serve a merged /report byte-for-byte identical, in every format, to
// the batch miner over the same records — relation-set sharding is exact.
func TestCoordinatorMatchesBatch(t *testing.T) {
	db := testDB()
	recs := synthRecords(1000, 42)

	batch := core.NewMiner(core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)}).MineRecords(recs)
	batch.AttachCoverage(db)

	coord := newInProcessCluster(t, 4, db, "")
	defer coord.Close()
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	if code, _, _ := get(t, ts.URL+"/report"); code != http.StatusServiceUnavailable {
		t.Fatalf("report before first merge: status %d", code)
	}

	for lo := 0; lo < len(recs); lo += 100 {
		hi := lo + 100
		if hi > len(recs) {
			hi = len(recs)
		}
		postUntilAccepted(t, ts.URL, recs[lo:hi])
	}
	mustFlush(t, ts.URL)

	for _, f := range []report.Format{report.Text, report.CSV, report.JSON} {
		var want bytes.Buffer
		if err := report.Write(&want, batch, f, report.Options{Coverage: true}); err != nil {
			t.Fatal(err)
		}
		code, hdr, got := get(t, ts.URL+"/report?format="+string(f))
		if code != http.StatusOK {
			t.Fatalf("%s report status %d", f, code)
		}
		if ct := hdr.Get("Content-Type"); ct != serve.FormatContentType(f) {
			t.Errorf("%s content-type %q, want %q", f, ct, serve.FormatContentType(f))
		}
		if hdr.Get("X-Merge-Exact") != "true" {
			t.Errorf("%s X-Merge-Exact = %q, want true", f, hdr.Get("X-Merge-Exact"))
		}
		if hdr.Get("X-Stale-Shards") != "" {
			t.Errorf("%s unexpected stale shards %q", f, hdr.Get("X-Stale-Shards"))
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s merged report differs from batch miner.\nmerged:\n%s\nbatch:\n%s", f, got, want.Bytes())
		}
	}

	// Every record landed on exactly one shard.
	code, _, body := get(t, ts.URL+"/shard/status")
	if code != http.StatusOK {
		t.Fatalf("shard/status: %d", code)
	}
	var status struct {
		Shards []ShardStatus `json:"shards"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	var forwarded int64
	nonEmpty := 0
	for _, st := range status.Shards {
		forwarded += st.Forwarded
		if st.Forwarded > 0 {
			nonEmpty++
		}
	}
	if forwarded != int64(len(recs)) {
		t.Errorf("forwarded %d records across shards, want %d", forwarded, len(recs))
	}
	if nonEmpty < 2 {
		t.Errorf("only %d shards received records; routing did not spread the workload", nonEmpty)
	}

	code, _, body = get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["ingest_accepted"].(float64) != float64(len(recs)) {
		t.Errorf("metrics ingest_accepted = %v, want %d", metrics["ingest_accepted"], len(recs))
	}
	if metrics["merge_exact"] != true {
		t.Errorf("metrics merge_exact = %v, want true", metrics["merge_exact"])
	}
}

// A dead shard must not wedge the coordinator: ingest keeps being accepted
// (the dead shard's slice buffers), /flush returns, and /report serves the
// remaining shards' merged view with the dead shard flagged stale.
func TestShardDownDegradesGracefully(t *testing.T) {
	db := testDB()
	recs := synthRecords(600, 7)

	mkShard := func() (*serve.Server, *httptest.Server) {
		s, err := serve.NewServer(serve.Config{
			Miner:      core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)},
			BatchSize:  64,
			EpochAreas: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(ResultHandler(s))
	}
	s0, ts0 := mkShard()
	s1, ts1 := mkShard()
	defer s0.Close()
	defer s1.Close()
	defer ts0.Close()

	router := NewRouter(2, skyserver.Schema(), 0, nil, 0)
	coord, err := NewCoordinator(Config{
		Router: router,
		Nodes: []Node{
			NewHTTPNode("shard-0", ts0.URL, nil),
			NewHTTPNode("shard-1", ts1.URL, nil),
		},
		QueueSize:      2048,
		BatchSize:      64,
		Eps:            0.06,
		HealthInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	postUntilAccepted(t, cts.URL, recs[:300])
	mustFlush(t, cts.URL)
	if code, hdr, _ := get(t, cts.URL+"/report"); code != http.StatusOK || hdr.Get("X-Stale-Shards") != "" {
		t.Fatalf("healthy report: status %d, stale %q", code, hdr.Get("X-Stale-Shards"))
	}

	// Kill shard 1 and give the health loop a probe cycle.
	ts1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !coord.down[1].Load() {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the dead shard down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Ingest keeps accepting: the dead shard's records buffer, the live
	// shard's flow.
	postUntilAccepted(t, cts.URL, recs[300:])

	mustFlush(t, cts.URL)
	code, hdr, body := get(t, cts.URL+"/report")
	if code != http.StatusOK {
		t.Fatalf("degraded report: status %d", code)
	}
	if hdr.Get("X-Stale-Shards") != "shard-1" {
		t.Errorf("X-Stale-Shards = %q, want shard-1", hdr.Get("X-Stale-Shards"))
	}
	if len(body) == 0 {
		t.Error("degraded report is empty")
	}

	code, _, body = get(t, cts.URL+"/shard/status")
	if code != http.StatusOK {
		t.Fatalf("shard/status: %d", code)
	}
	var status struct {
		Shards []ShardStatus `json:"shards"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		t.Fatal(err)
	}
	if !status.Shards[1].Down {
		t.Error("shard/status does not show shard-1 down")
	}
	if !status.Shards[1].Stale {
		t.Error("shard/status does not show shard-1 stale")
	}

	// Closing with a shard down must not hang (its backlog is abandoned
	// after bounded retries).
	done := make(chan struct{})
	go func() { _ = coord.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("coordinator Close hung with a shard down")
	}
}

// The wire form must round-trip every field the reports read, including
// unbounded interval endpoints (±Inf breaks naive float JSON).
func TestWireResultRoundTrip(t *testing.T) {
	db := testDB()
	recs := synthRecords(800, 3)
	res := core.NewMiner(core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)}).MineRecords(recs)
	res.AttachCoverage(db)
	if len(res.Clusters) == 0 {
		t.Fatal("batch mine produced no clusters; cannot exercise the wire format")
	}

	// Force an unbounded and an open endpoint into one box to pin the ±Inf
	// encoding.
	res.Clusters[0].Box.Set("synthetic_dim", interval.Interval{Lo: math.Inf(-1), Hi: 3.5, HiOpen: true})

	data, err := json.Marshal(EncodeResult(res, 7))
	if err != nil {
		t.Fatalf("wire encode: %v", err)
	}
	var wire WireResult
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("wire decode: %v", err)
	}
	if wire.Generation != 7 {
		t.Errorf("generation %d, want 7", wire.Generation)
	}
	decoded := DecodeResult(&wire)

	var want, got bytes.Buffer
	if err := report.Write(&want, res, report.Text, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	if err := report.Write(&got, decoded, report.Text, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("decoded report differs:\ngot:\n%s\nwant:\n%s", got.Bytes(), want.Bytes())
	}
	iv := decoded.Clusters[0].Box.Get("synthetic_dim")
	if !math.IsInf(iv.Lo, -1) || iv.Hi != 3.5 || !iv.HiOpen {
		t.Errorf("synthetic interval did not round-trip: %+v", iv)
	}
}

// The sticky assignment must survive a restart byte-for-byte: re-routing a
// restored shard's keys elsewhere would double-count its areas. (Warmup is
// disabled here — staging is covered by TestRouterWarmupBinding; persistence
// is about the bound assignment.)
func TestRouterStatePersistence(t *testing.T) {
	recs := synthRecords(400, 11)
	r1 := NewRouter(4, skyserver.Schema(), 0, nil, -1)
	want := make([]int, len(recs))
	for i, rec := range recs {
		want[i], _ = r1.Route(rec)
	}
	path := filepath.Join(t.TempDir(), "router.json")
	if err := r1.SaveState(path); err != nil {
		t.Fatal(err)
	}

	r2 := NewRouter(4, skyserver.Schema(), 0, nil, -1)
	if err := r2.LoadState(path); err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(recs))
	for i, rec := range recs {
		got[i], _ = r2.Route(rec)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored router routes records differently")
	}
	if r2.MaxRels() != r1.MaxRels() {
		t.Errorf("restored maxRels %d, want %d", r2.MaxRels(), r1.MaxRels())
	}

	r3 := NewRouter(8, skyserver.Schema(), 0, nil, -1)
	if err := r3.LoadState(path); err == nil {
		t.Fatal("loading a 4-shard assignment into an 8-shard router must fail")
	}
	if err := NewRouter(4, skyserver.Schema(), 0, nil, -1).LoadState(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing state file is a cold start, not an error: %v", err)
	}

	// A restored router must not stage: its keys route immediately even when
	// it was constructed with warmup enabled.
	r4 := NewRouter(4, skyserver.Schema(), 0, nil, 0)
	if err := r4.LoadState(path); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		s, _ := r4.Route(rec)
		if s == ShardStaged {
			t.Fatalf("restored router staged record %d", i)
		}
	}
}

// Warmup staging: keys stage until the horizon, BindAll packs them in
// descending observed-count order onto least-loaded shards, and post-bind
// routing is sticky to those assignments.
func TestRouterWarmupBinding(t *testing.T) {
	recs := synthRecords(2000, 42)
	r := NewRouter(4, skyserver.Schema(), 0, nil, 64)

	staged := 0
	keyOf := make(map[int]string)
	var bound map[string]int
	for i, rec := range recs {
		s, key := r.Route(rec)
		if s == ShardStaged {
			staged++
			keyOf[i] = key
			if key == "" {
				t.Fatalf("record %d staged without a key", i)
			}
			if bound != nil {
				t.Fatalf("record %d staged after BindAll", i)
			}
			if r.NeedsBind() {
				bound = r.BindAll()
			}
			continue
		}
		if bound != nil && key != "" {
			if wantShard, ok := bound[key]; ok {
				if s != wantShard {
					t.Fatalf("record %d key %q routed to %d, bound to %d", i, key, s, wantShard)
				}
			}
		}
	}
	if staged != 64 {
		t.Errorf("staged %d records, want exactly the warmup horizon 64", staged)
	}
	if bound == nil {
		t.Fatal("warmup horizon never crossed on 2000 records")
	}
	for i, key := range keyOf {
		if _, ok := bound[key]; !ok {
			t.Errorf("staged record %d key %q never bound", i, key)
		}
	}
	if r.NeedsBind() {
		t.Error("NeedsBind still true after BindAll")
	}

	// Loads account for every routed area record (staged ones charged at
	// bind), and the packing uses more than one shard.
	loads := r.Loads()
	nonEmpty := 0
	var total int64
	for _, l := range loads {
		total += l
		if l > 0 {
			nonEmpty++
		}
	}
	if total == 0 || nonEmpty < 2 {
		t.Errorf("loads %v: packing did not spread staged keys", loads)
	}
}
