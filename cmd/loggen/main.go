// Command loggen generates a synthetic SkyServer query log whose workload
// mix mirrors the paper's Table 1 (24 cluster templates plus background
// noise, erroneous statements, admin DDL, MySQL-dialect queries and
// >35-predicate monsters).
//
// Usage:
//
//	loggen [-n 20000] [-seed 42] [-format csv|jsonl] [-o file]
//
// -classes switches to the mixed-traffic generator: the log is apportioned
// across per-class behaviours (bots hammering a template or two at machine
// cadence, humans browsing in bursty sessions, admins issuing DDL), with
// ground truth recoverable from the user-name prefix (bot##/adm##/u######):
//
//	loggen -n 20000 -classes bot:0.7,human:0.25,admin:0.05
//
// Replay mode paces the log out as NDJSON for driving skyserved — to a
// file/stdout, or POSTed burst-by-burst straight at an /ingest endpoint
// (re-sending whatever a 429 backpressure response did not accept):
//
//	loggen -n 20000 -replay -rate 2000 -burst 100 -url http://localhost:8080/ingest
//
// -conns N replays over N concurrent connections (the log is split into N
// contiguous slices, each replayed at rate/N so the aggregate -rate and the
// per-burst 429-retry semantics are preserved) — the shape of a sharded
// skyserved deployment's real ingest traffic.
//
// -start/-step rewrite record times to a deterministic monotonic clock
// (Time = start + i*step logical seconds), so WAL segment windows and
// /remine time ranges are exercisable reproducibly:
//
//	loggen -n 20000 -step 4 -replay -url http://localhost:8080/ingest
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/qlog"
	"repro/internal/skyserver"
)

func main() {
	n := flag.Int("n", 20000, "number of queries")
	seed := flag.Int64("seed", 42, "generator seed")
	format := flag.String("format", "csv", "output format: csv or jsonl")
	out := flag.String("o", "", "output file (default stdout)")
	noise := flag.Float64("noise", 0.12, "background-noise fraction")
	errs := flag.Float64("errors", 0.0054, "unparseable-statement fraction")
	replay := flag.Bool("replay", false, "replay mode: emit NDJSON paced by -rate/-burst")
	rate := flag.Float64("rate", 1000, "replay records per second (0 = as fast as possible)")
	burst := flag.Int("burst", 100, "replay records per burst")
	url := flag.String("url", "", "replay target: POST each burst to this /ingest endpoint instead of writing it")
	conns := flag.Int("conns", 1, "concurrent replay connections (with -url; each replays a contiguous log slice at rate/conns)")
	start := flag.Int64("start", 0, "with -step: timestamp (logical seconds) of the first record")
	step := flag.Int64("step", 0, "rewrite record times to -start + i*-step, a monotonic clock for WAL windows and /remine ranges (0 = keep generator times)")
	classes := flag.String("classes", "", "mixed-traffic mode: class shares as bot:0.7,human:0.25,admin:0.05 (empty = Table-1 workload)")
	flag.Parse()

	cfg := skyserver.WorkloadConfig{
		Queries: *n, Seed: *seed, NoiseFraction: *noise, ErrorFraction: *errs,
	}
	var entries []skyserver.LogEntry
	if *classes != "" {
		mix, err := parseClassMix(*classes)
		if err != nil {
			fatal(err)
		}
		entries = skyserver.GenerateMixedLog(cfg, mix)
	} else {
		entries = skyserver.GenerateLog(cfg)
	}
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	if *step > 0 {
		for i := range recs {
			recs[i].Time = *start + int64(i)**step
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *replay {
		if err := replay2(w, recs, *rate, *burst, *url, *conns); err != nil {
			fatal(err)
		}
		return
	}

	var err error
	switch *format {
	case "csv":
		err = qlog.WriteCSV(w, recs)
	case "jsonl":
		err = qlog.WriteJSONL(w, recs)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// replay2 fans the replay out over conns concurrent connections. Each
// connection owns a contiguous slice of the log and paces itself at
// rate/conns, so the aggregate offered rate still matches -rate while the
// server sees genuinely concurrent ingest. Pipe output (-url "") and conns
// <= 1 keep the original single-stream behaviour; interleaving NDJSON
// writers onto one pipe would corrupt lines.
func replay2(w io.Writer, recs []qlog.Record, rate float64, burst int, url string, conns int) error {
	if conns <= 1 || url == "" || len(recs) == 0 {
		return replayLog(w, recs, rate, burst, url)
	}
	if conns > len(recs) {
		conns = len(recs)
	}
	per := (len(recs) + conns - 1) / conns
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		lo := i * per
		hi := lo + per
		if lo >= len(recs) {
			break
		}
		if hi > len(recs) {
			hi = len(recs)
		}
		wg.Add(1)
		go func(i int, slice []qlog.Record) {
			defer wg.Done()
			errs[i] = replayLog(nil, slice, rate/float64(conns), burst, url)
		}(i, recs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// replayLog emits the log in NDJSON bursts, pacing burst starts so the
// average rate matches -rate. With -url each burst is POSTed to an ingest
// endpoint; a 429 response reports how many records the bounded queue
// accepted, and the rest are re-sent after a short backoff so backpressure
// slows the replay instead of dropping records.
func replayLog(w io.Writer, recs []qlog.Record, rate float64, burst int, url string) error {
	if burst <= 0 {
		burst = 100
	}
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(burst) / rate * float64(time.Second))
	}
	next := time.Now()
	for lo := 0; lo < len(recs); lo += burst {
		hi := lo + burst
		if hi > len(recs) {
			hi = len(recs)
		}
		if rate > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		chunk := recs[lo:hi]
		if url == "" {
			if err := qlog.WriteJSONL(w, chunk); err != nil {
				return err
			}
			continue
		}
		if err := postBurst(url, chunk); err != nil {
			return err
		}
	}
	return nil
}

// postBurst POSTs one NDJSON burst, retrying the unaccepted tail on 429.
func postBurst(url string, chunk []qlog.Record) error {
	backoff := 25 * time.Millisecond
	for len(chunk) > 0 {
		var buf bytes.Buffer
		if err := qlog.WriteJSONL(&buf, chunk); err != nil {
			return err
		}
		resp, err := http.Post(url, "application/x-ndjson", &buf)
		if err != nil {
			return err
		}
		var reply struct {
			Accepted int    `json:"accepted"`
			Error    string `json:"error"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&reply)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			return nil
		case http.StatusTooManyRequests:
			if decErr != nil {
				return fmt.Errorf("replay: 429 with unreadable body: %v", decErr)
			}
			chunk = chunk[reply.Accepted:]
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
		default:
			return fmt.Errorf("replay: %s: %s %s", url, resp.Status, reply.Error)
		}
	}
	return nil
}

// parseClassMix parses "bot:0.7,human:0.25,admin:0.05". Classes may appear
// in any order and be omitted (share 0); at least one share must be positive.
func parseClassMix(s string) (skyserver.ClassMix, error) {
	var mix skyserver.ClassMix
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return mix, fmt.Errorf("bad -classes entry %q (want class:share)", part)
		}
		share, err := strconv.ParseFloat(val, 64)
		if err != nil || share < 0 {
			return mix, fmt.Errorf("bad -classes share %q for class %q", val, name)
		}
		switch name {
		case "bot":
			mix.Bot = share
		case "human":
			mix.Human = share
		case "admin":
			mix.Admin = share
		default:
			return mix, fmt.Errorf("unknown -classes class %q (want bot, human or admin)", name)
		}
	}
	if mix.Bot+mix.Human+mix.Admin <= 0 {
		return mix, fmt.Errorf("-classes %q: at least one share must be positive", s)
	}
	return mix, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loggen:", err)
	os.Exit(1)
}
