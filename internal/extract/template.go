package extract

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/predicate"
	"repro/internal/sqlparser"
)

// likeGuard is a per-record condition an AreaTemplate imposes on the LIKE
// pattern literal at Slot: the extraction maps wildcard-free patterns to
// equalities and wildcard patterns to the TRUE approximation, so a rebind is
// valid only when the record's pattern has the same wildcard-ness as the one
// the template was built from.
type likeGuard struct {
	Slot     int
	Wildcard bool
}

// AreaTemplate is the cached per-fingerprint extraction outcome of one
// statement shape (DESIGN.md §7). Statements sharing a fingerprint differ
// only in literal values, so the outcome — parse failure category, non-SELECT
// kind, extraction error, or an access area with literal slots — is shared by
// the whole class, except where a value decides the constraint's structure
// (Uncacheable) or a per-record guard fails.
//
// Exactly one outcome group applies:
//   - Uncacheable: the shape's constraint structure depends on literal
//     values; every record of the class takes the slow path.
//   - ParseFailCat != "": parsing fails, with this failure category.
//   - NonSelect: parses to a recognised non-SELECT statement.
//   - ExtractErr != nil: extraction fails with this (structural) error.
//   - otherwise: Rebind instantiates the area for a record's literals.
type AreaTemplate struct {
	Uncacheable  bool
	Reason       string
	ParseFailCat string
	NonSelect    bool
	ExtractErr   error

	// Rebind payload. constraint is the pre-CNF slot-tagged expression;
	// relations/referenced/exactBase/truncated are the value-independent
	// area fields. guards are the per-record LIKE conditions.
	constraint predicate.Expr
	relations  []string
	referenced []string
	exactBase  bool
	truncated  bool
	guards     []likeGuard

	// fast marks templates whose final consolidated CNF provably has the
	// same shape for every literal assignment (tierASafe); cnf is that CNF
	// with slots, and Rebind substitutes into a clone of it directly,
	// skipping CNF conversion and consolidation.
	fast bool
	cnf  predicate.CNF

	// routeKey is the precomputed RelationSetKey of relations. A statement
	// shape's FROM clause is literal-independent, so the key is valid for
	// every record of the fingerprint class — including Uncacheable shapes,
	// whose CONSTRAINT structure depends on values but whose relation set
	// does not. Empty for non-area outcomes (parse failure, non-SELECT,
	// extraction error).
	routeKey string
}

// RouteKey returns the relation-set shard key shared by every record of the
// template's fingerprint class, or "" when the class produces no access area
// (and therefore contributes only summed counters, routable anywhere).
func (t *AreaTemplate) RouteKey() string { return t.routeKey }

// ExtractTemplate is ExtractWithTimings plus construction of the statement
// shape's reusable template. The template is non-nil even on extraction
// error (recording the error as the class outcome); it is nil only when the
// caller should not cache, which never happens here — Uncacheable shapes get
// an explicit sentinel so the class skips template construction next time.
func (ex *Extractor) ExtractTemplate(sel *sqlparser.SelectStatement) (*AccessArea, Timings, *AreaTemplate, error) {
	area, tm, expr, st, err := ex.extractFull(sel)
	if err != nil {
		return nil, tm, &AreaTemplate{ExtractErr: err}, err
	}
	if !st.cacheable {
		// The sentinel still carries the class's (value-independent) relation
		// set so the shard router can key on it without re-parsing.
		return area, tm, &AreaTemplate{
			Uncacheable: true,
			Reason:      st.cacheReason,
			relations:   area.Relations,
			routeKey:    RelationSetKey(area.Relations),
		}, nil
	}
	t := &AreaTemplate{
		constraint: expr,
		relations:  area.Relations,
		referenced: area.Referenced,
		exactBase:  st.exact,
		truncated:  area.Truncated,
		guards:     st.likeGuards,
		routeKey:   RelationSetKey(area.Relations),
	}
	if tierASafe(expr, area.CNF) {
		t.fast = true
		t.cnf = area.CNF.Clone()
	}
	return area, tm, t, nil
}

// Rebind instantiates the template's access area for a record whose literal
// list (in lexer order, from sqlparser.Fingerprint) fills the slots. ok is
// false when the template is not rebindable (Uncacheable or a non-area
// outcome) or a per-record guard fails — the caller must take the slow path.
// Timings report where the rebind spent its time so pipeline stage counters
// stay consistent with the slow path. Relations and Referenced slices are
// shared across rebinds of one template; callers must not mutate them.
func (t *AreaTemplate) Rebind(ex *Extractor, lits []sqlparser.Literal) (*AccessArea, Timings, bool) {
	sp := rebindStage.Start()
	defer sp.End()
	var tm Timings
	if t.Uncacheable || t.ParseFailCat != "" || t.NonSelect || t.ExtractErr != nil || t.constraint == nil {
		templateRebindFails.Inc()
		return nil, tm, false
	}
	for _, g := range t.guards {
		if g.Slot > len(lits) {
			templateRebindFails.Inc()
			return nil, tm, false
		}
		if strings.ContainsAny(lits[g.Slot-1].Str, "%_") != g.Wildcard {
			templateRebindFails.Inc()
			return nil, tm, false
		}
	}
	templateRebinds.Inc()
	var area *AccessArea
	if t.fast {
		t0 := time.Now()
		cnf := t.cnf.Clone()
		for i := range cnf {
			for j := range cnf[i] {
				p := &cnf[i][j]
				if p.Kind == predicate.ColumnConstant {
					p.Val = substValue(p.Val, lits)
				}
			}
		}
		area = &AccessArea{
			Relations:  t.relations,
			CNF:        cnf,
			Exact:      t.exactBase && !t.truncated,
			Truncated:  t.truncated,
			Referenced: t.referenced,
		}
		tm.Extract = time.Since(t0)
	} else {
		t0 := time.Now()
		expr := predicate.MapLeaves(t.constraint, func(p predicate.Pred) predicate.Pred {
			if p.Kind == predicate.ColumnConstant {
				p.Val = substValue(p.Val, lits)
			}
			return p
		})
		tm.Extract = time.Since(t0)
		t1 := time.Now()
		cnf, truncated := predicate.ToCNF(expr, ex.predCap())
		tm.CNF = time.Since(t1)
		t2 := time.Now()
		cnf = predicate.Consolidate(cnf)
		tm.Consolidate = time.Since(t2)
		area = &AccessArea{
			Relations:  t.relations,
			CNF:        cnf,
			Exact:      t.exactBase && !truncated,
			Truncated:  truncated,
			Referenced: t.referenced,
		}
	}
	if ex.Stats != nil {
		observeStats(ex.Stats, area)
	}
	return area, tm, true
}

// substValue replaces a slotted constant with the record's literal at the
// same slot, reapplying the unary minus signs the parser folded in.
func substValue(v predicate.Value, lits []sqlparser.Literal) predicate.Value {
	if v.Slot <= 0 || v.Slot > len(lits) {
		return v
	}
	lit := lits[v.Slot-1]
	switch v.Kind {
	case predicate.NumberVal:
		num := lit.Num
		if v.NegDepth%2 == 1 {
			num = -num
		}
		v.Num = num
		if v.Text != "" {
			v.Text = strings.Repeat("-", v.NegDepth) + lit.Text
		}
	case predicate.StringVal:
		v.Str = lit.Str
	}
	return v
}

// tierASafe reports whether the final consolidated CNF is structurally
// invariant under any reassignment of the template's literal slots, so a
// rebind may substitute into it directly instead of re-running CNF
// conversion and consolidation. The rules (DESIGN.md §7):
//
//  1. Every final clause holds exactly one predicate — multi-predicate
//     clauses can merge, become tautological, or reorder within the clause
//     depending on values.
//  2. The column of every slotted final predicate appears in exactly one
//     final predicate — otherwise consolidation's cross-clause interval
//     intersection could merge or contradict differently for other values.
//  3. Slot conservation: the multiset of slots in the final CNF equals the
//     multiset in the constraint's leaves — a dropped or merged slotted
//     predicate (within-clause union, dedup, absorption, truncation) means
//     the surviving bounds were chosen by value comparison.
//  4. Order stability: for every pair of final clauses, the first byte at
//     which their sort keys differ lies before both keys' value suffixes, so
//     the normalisation order cannot flip under substitution.
func tierASafe(constraint predicate.Expr, cnf predicate.CNF) bool {
	colUses := make(map[string]int)
	finalSlots := make(map[int]int)
	for _, cl := range cnf {
		if len(cl) != 1 {
			return false
		}
		p := cl[0]
		for _, c := range p.Columns() {
			colUses[c]++
		}
		if p.Kind == predicate.ColumnConstant && p.Val.Slot > 0 {
			finalSlots[p.Val.Slot]++
		}
	}
	for _, cl := range cnf {
		p := cl[0]
		if p.Kind == predicate.ColumnConstant && p.Val.Slot > 0 && colUses[p.Column] != 1 {
			return false
		}
	}
	leafSlots := make(map[int]int)
	collectLeafSlots(constraint, leafSlots)
	if len(leafSlots) != len(finalSlots) {
		return false
	}
	for s, n := range leafSlots {
		if finalSlots[s] != n {
			return false
		}
	}
	type clauseID struct {
		key  string
		vpos int // byte offset where value-dependent content starts
	}
	ids := make([]clauseID, len(cnf))
	for i, cl := range cnf {
		p := cl[0]
		key := p.Key()
		vpos := len(key) + 1 // no slotted value: the whole key is stable
		if p.Kind == predicate.ColumnConstant && p.Val.Slot > 0 {
			vpos = len(p.Column) + len(p.Op.String())
		}
		ids[i] = clauseID{key: key, vpos: vpos}
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			d := firstDiff(ids[i].key, ids[j].key)
			if d >= ids[i].vpos || d >= ids[j].vpos {
				return false
			}
		}
	}
	return true
}

// collectLeafSlots accumulates the slot multiset of the constraint's
// column-constant leaves.
func collectLeafSlots(e predicate.Expr, slots map[int]int) {
	switch x := e.(type) {
	case *predicate.Leaf:
		if x.P.Kind == predicate.ColumnConstant && x.P.Val.Slot > 0 {
			slots[x.P.Val.Slot]++
		}
	case *predicate.Not:
		collectLeafSlots(x.Kid, slots)
	case *predicate.And:
		for _, k := range x.Kids {
			collectLeafSlots(k, slots)
		}
	case *predicate.Or:
		for _, k := range x.Kids {
			collectLeafSlots(k, slots)
		}
	}
}

// firstDiff returns the index of the first byte at which a and b differ;
// when one is a prefix of the other it is the shorter length.
func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TemplateCache is a concurrency-safe fingerprint → AreaTemplate map with
// hit/miss telemetry. The zero value is ready to use.
type TemplateCache struct {
	m      sync.Map // uint64 -> *AreaTemplate
	size   atomic.Int64
	hits   atomic.Int64
	misses atomic.Int64

	// Limit, when positive, stops the cache from storing more than this many
	// templates; lookups continue to work. The SkyServer log's template
	// count is small (tens of shapes per workload), so the default of
	// unbounded is safe there; bound it for adversarial inputs.
	Limit int
}

// Get returns the cached template for fp.
func (c *TemplateCache) Get(fp uint64) (*AreaTemplate, bool) {
	v, ok := c.m.Load(fp)
	if !ok {
		c.misses.Add(1)
		templateMisses.Inc()
		return nil, false
	}
	c.hits.Add(1)
	templateHits.Inc()
	return v.(*AreaTemplate), true
}

// Put stores the template for fp unless the size limit is reached; the first
// stored template wins when two workers race.
func (c *TemplateCache) Put(fp uint64, t *AreaTemplate) {
	if t == nil {
		return
	}
	if c.Limit > 0 && c.size.Load() >= int64(c.Limit) {
		return
	}
	if _, loaded := c.m.LoadOrStore(fp, t); !loaded {
		c.size.Add(1)
		templateStores.Inc()
	}
}

// Len returns the number of cached templates.
func (c *TemplateCache) Len() int { return int(c.size.Load()) }

// Hits returns the number of successful lookups.
func (c *TemplateCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of failed lookups.
func (c *TemplateCache) Misses() int64 { return c.misses.Load() }
