package dbscan

import (
	"math"
	"sort"
)

// OPTICS implements the reachability-ordering generalisation of DBSCAN
// (Ankerst et al.), realising the paper's Section 7 plan to "experiment
// with different clustering techniques": one OPTICS run at a generous
// maxEps supports extracting DBSCAN-style clusterings at ANY smaller eps
// without re-running the O(n²) computation.
type OPTICS struct {
	// Order lists point indices in processing order.
	Order []int
	// Reachability[i] is the reachability distance of point i (math.Inf(1)
	// for the first point of each component).
	Reachability []float64
	// CoreDist[i] is the core distance of point i at maxEps (math.Inf(1)
	// when i is not a core point).
	CoreDist []float64

	maxEps  float64
	minPts  int
	weights []int
}

// RunOPTICS computes the reachability ordering for n points. dist must be
// symmetric. weights assigns multiplicities (nil means 1 each), matching
// the weighted core-point rule of Cluster.
func RunOPTICS(n int, dist func(i, j int) float64, maxEps float64, minPts int, weights []int) *OPTICS {
	o := &OPTICS{
		Reachability: make([]float64, n),
		CoreDist:     make([]float64, n),
		maxEps:       maxEps,
		minPts:       minPts,
		weights:      weights,
	}
	processed := make([]bool, n)
	for i := range o.Reachability {
		o.Reachability[i] = math.Inf(1)
		o.CoreDist[i] = math.Inf(1)
	}
	weight := func(i int) int {
		if weights == nil {
			return 1
		}
		return weights[i]
	}

	// neighbours returns (index, distance) pairs within maxEps of p.
	type nd struct {
		idx int
		d   float64
	}
	neighbours := func(p int) []nd {
		var out []nd
		for j := 0; j < n; j++ {
			if j == p {
				out = append(out, nd{j, 0})
				continue
			}
			if d := dist(p, j); d <= maxEps {
				out = append(out, nd{j, d})
			}
		}
		return out
	}
	coreDist := func(p int, nbs []nd) float64 {
		// Weighted core distance: smallest radius containing minPts weight.
		sorted := append([]nd(nil), nbs...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].d < sorted[b].d })
		total := 0
		for _, x := range sorted {
			total += weight(x.idx)
			if total >= minPts {
				return x.d
			}
		}
		return math.Inf(1)
	}

	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Seed list as a simple priority structure (n is moderate).
		seeds := map[int]float64{}
		current := start
		for {
			nbs := neighbours(current)
			processed[current] = true
			o.Order = append(o.Order, current)
			cd := coreDist(current, nbs)
			o.CoreDist[current] = cd
			if !math.IsInf(cd, 1) {
				for _, x := range nbs {
					if processed[x.idx] {
						continue
					}
					newReach := math.Max(cd, x.d)
					if old, ok := seeds[x.idx]; !ok || newReach < old {
						seeds[x.idx] = newReach
					}
				}
			}
			// Pop the seed with the smallest reachability.
			if len(seeds) == 0 {
				break
			}
			best, bestD := -1, math.Inf(1)
			for idx, d := range seeds {
				if d < bestD || (d == bestD && (best == -1 || idx < best)) {
					best, bestD = idx, d
				}
			}
			delete(seeds, best)
			o.Reachability[best] = bestD
			current = best
		}
	}
	return o
}

// ExtractDBSCAN derives a DBSCAN-style clustering at eps' <= maxEps from
// the reachability plot: a new cluster starts whenever reachability exceeds
// eps' at a point whose core distance (at eps') is within eps'; points with
// both values above eps' are noise.
func (o *OPTICS) ExtractDBSCAN(eps float64) *Result {
	labels := make([]int, len(o.Reachability))
	for i := range labels {
		labels[i] = Noise
	}
	clusterID := -1
	for _, p := range o.Order {
		if o.Reachability[p] > eps {
			if o.CoreDist[p] <= eps {
				clusterID++
				labels[p] = clusterID
			}
			// else: noise
			continue
		}
		if clusterID >= 0 {
			labels[p] = clusterID
		}
	}
	return &Result{Labels: labels, NumClusters: clusterID + 1}
}
