// Package memdb is a small in-memory relational engine. It stands in for
// the live SkyServer database in this reproduction (see DESIGN.md §1): the
// paper needs a queryable database only to (a) sample content(a) statistics
// (Section 5.3) and (b) run the re-querying baseline of Section 6.6, and
// both require nothing more than a consistent relational state with
// realistic content bounding boxes.
//
// The engine executes the parsed SELECT dialect of internal/sqlparser:
// joins (inner, cross, natural, left/right/full outer), WHERE with nested
// subqueries (EXISTS, IN, quantified, scalar), GROUP BY with the aggregate
// functions of Section 4.3, HAVING, DISTINCT, ORDER BY and TOP/LIMIT. It
// also simulates SkyServer's operational errors: the output row cap ("limit
// is top 500000") and the per-user rate limit ("Maximum 60 queries allowed
// per minute").
//
// NULL handling is simplified to two-valued logic (comparisons involving
// NULL are false); the substrate's synthetic data contains no NULLs.
package memdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interval"
	"repro/internal/schema"
)

// Value is one cell value.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
}

// ValueKind discriminates cell types.
type ValueKind int

const (
	Null ValueKind = iota
	Num
	Str
)

// N builds a numeric value.
func N(v float64) Value { return Value{Kind: Num, Num: v} }

// S builds a string value.
func S(v string) Value { return Value{Kind: Str, Str: v} }

// NullValue is the NULL cell.
func NullValue() Value { return Value{Kind: Null} }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case Null:
		return "NULL"
	case Num:
		return fmt.Sprintf("%g", v.Num)
	default:
		return "'" + v.Str + "'"
	}
}

// Equal compares two values for equality (NULL never equals anything).
func (v Value) Equal(o Value) bool {
	if v.Kind == Null || o.Kind == Null {
		return false
	}
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == Num {
		return v.Num == o.Num
	}
	return v.Str == o.Str
}

// Compare returns -1/0/1; ok is false when either side is NULL or the kinds
// differ.
func (v Value) Compare(o Value) (int, bool) {
	if v.Kind == Null || o.Kind == Null || v.Kind != o.Kind {
		return 0, false
	}
	if v.Kind == Num {
		switch {
		case v.Num < o.Num:
			return -1, true
		case v.Num > o.Num:
			return 1, true
		default:
			return 0, true
		}
	}
	return strings.Compare(v.Str, o.Str), true
}

// Table is a named relation with positional rows.
type Table struct {
	Name    string
	Columns []string
	colIdx  map[string]int
	Rows    [][]Value
}

// ColumnIndex returns the position of the (case-insensitive) column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// DB is a set of tables.
type DB struct {
	Schema *schema.Schema
	tables map[string]*Table
}

// New returns an empty database over the given schema (which may be nil).
func New(s *schema.Schema) *DB {
	return &DB{Schema: s, tables: make(map[string]*Table)}
}

// CreateTable registers a table with the given columns, replacing any
// previous table of the same name.
func (db *DB) CreateTable(name string, columns ...string) *Table {
	t := &Table{Name: name, Columns: columns, colIdx: make(map[string]int, len(columns))}
	for i, c := range columns {
		t.colIdx[strings.ToLower(c)] = i
	}
	db.tables[strings.ToLower(name)] = t
	return t
}

// Table returns the named table or nil.
func (db *DB) Table(name string) *Table {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return db.tables[strings.ToLower(name)]
}

// Insert appends a row; the row length must match the column count.
func (db *DB) Insert(table string, row ...Value) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("memdb: unknown table %q", table)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("memdb: row width %d != %d columns of %s", len(row), len(t.Columns), t.Name)
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Tables returns all table names in sorted order.
func (db *DB) Tables() []string {
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// ContentInterval computes content(a) — the minimum bounding interval of a
// numeric column's data (Section 2.1). Column is qualified "Table.column".
func (db *DB) ContentInterval(column string) (interval.Interval, bool) {
	rel, col, ok := splitQualified(column)
	if !ok {
		return interval.Interval{}, false
	}
	t := db.Table(rel)
	if t == nil {
		return interval.Interval{}, false
	}
	ci, ok := t.ColumnIndex(col)
	if !ok {
		return interval.Interval{}, false
	}
	first := true
	var lo, hi float64
	for _, row := range t.Rows {
		v := row[ci]
		if v.Kind != Num {
			continue
		}
		if first {
			lo, hi = v.Num, v.Num
			first = false
			continue
		}
		if v.Num < lo {
			lo = v.Num
		}
		if v.Num > hi {
			hi = v.Num
		}
	}
	if first {
		return interval.Interval{}, false
	}
	return interval.Closed(lo, hi), true
}

// ContentValues returns the distinct values of a categorical column.
func (db *DB) ContentValues(column string) ([]string, bool) {
	rel, col, ok := splitQualified(column)
	if !ok {
		return nil, false
	}
	t := db.Table(rel)
	if t == nil {
		return nil, false
	}
	ci, ok := t.ColumnIndex(col)
	if !ok {
		return nil, false
	}
	set := make(map[string]struct{})
	for _, row := range t.Rows {
		if row[ci].Kind == Str {
			set[row[ci].Str] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil, false
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, true
}

// SampleColumn returns up to n numeric values of a column, mimicking the
// Section 5.3 sampling used to seed content(a).
func (db *DB) SampleColumn(column string, n int) []float64 {
	rel, col, ok := splitQualified(column)
	if !ok {
		return nil
	}
	t := db.Table(rel)
	if t == nil {
		return nil
	}
	ci, ok := t.ColumnIndex(col)
	if !ok {
		return nil
	}
	var out []float64
	step := 1
	if len(t.Rows) > n && n > 0 {
		step = len(t.Rows) / n
	}
	for i := 0; i < len(t.Rows) && len(out) < n; i += step {
		if v := t.Rows[i][ci]; v.Kind == Num {
			out = append(out, v.Num)
		}
	}
	return out
}

// ObjectFraction implements aggregate.DataSource: the fraction of objects
// of the given relations inside box and matching the categorical
// equalities. For a multi-relation area the per-relation fractions multiply
// (the universal relation is the product space).
func (db *DB) ObjectFraction(relations []string, box *interval.Box, categorical map[string][]string) float64 {
	frac := 1.0
	for _, rel := range relations {
		t := db.Table(rel)
		if t == nil || len(t.Rows) == 0 {
			continue
		}
		matched := 0
		for _, row := range t.Rows {
			if rowMatches(t, row, box, categorical) {
				matched++
			}
		}
		frac *= float64(matched) / float64(len(t.Rows))
	}
	return frac
}

// Restrict materialises the sub-database covering an aggregated access area:
// for each listed relation present in db, a table holding exactly the rows
// whose numeric columns fall inside box and whose categorical columns match
// one of the given values (case-insensitively, mirroring query evaluation).
// Box dimensions and categorical columns are qualified "Table.column";
// entries for other relations or unknown columns are ignored, exactly as in
// ObjectFraction. Row order is preserved and row slices are shared with db —
// the result is a read-only view for the semantic cache's prefetcher, not an
// independent copy. Relations absent from db are skipped.
func (db *DB) Restrict(relations []string, box *interval.Box, categorical map[string][]string) *DB {
	out, _ := db.RestrictIndexed(relations, box, categorical)
	return out
}

// RestrictIndexed is Restrict plus, per restricted table (keyed by the
// lowercased canonical table name), the sorted positions each admitted row
// occupied in the source table. The position lists let callers union two
// restrictions of the same source without re-sorting: merging by position
// reproduces global source order, which is what makes composed region
// stores byte-identical to direct execution.
func (db *DB) RestrictIndexed(relations []string, box *interval.Box, categorical map[string][]string) (*DB, map[string][]int) {
	out := New(db.Schema)
	idx := make(map[string][]int, len(relations))
	for _, rel := range relations {
		t := db.Table(rel)
		if t == nil {
			continue
		}
		if out.Table(t.Name) != nil {
			continue
		}
		nt := out.CreateTable(t.Name, t.Columns...)
		key := strings.ToLower(t.Name)
		positions := []int{}
		for ri, row := range t.Rows {
			if rowMatches(t, row, box, categorical) {
				nt.Rows = append(nt.Rows, row)
				positions = append(positions, ri)
			}
		}
		idx[key] = positions
	}
	return out, idx
}

func rowMatches(t *Table, row []Value, box *interval.Box, categorical map[string][]string) bool {
	for _, col := range box.Dims() {
		rel, cname, ok := splitQualified(col)
		if !ok || !strings.EqualFold(rel, t.Name) {
			continue
		}
		ci, ok := t.ColumnIndex(cname)
		if !ok {
			continue
		}
		v := row[ci]
		if v.Kind != Num || !box.Get(col).Contains(v.Num) {
			return false
		}
	}
	for col, vals := range categorical {
		rel, cname, ok := splitQualified(col)
		if !ok || !strings.EqualFold(rel, t.Name) {
			continue
		}
		ci, ok := t.ColumnIndex(cname)
		if !ok {
			continue
		}
		v := row[ci]
		if v.Kind != Str {
			return false
		}
		found := false
		for _, want := range vals {
			if strings.EqualFold(v.Str, want) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func splitQualified(name string) (rel, col string, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}
