package qlog

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/extract"
	"repro/internal/predicate"
)

// Event is a stream-monitor notification.
type Event struct {
	Kind   EventKind
	Detail string
	Record Record
}

// EventKind classifies notifications.
type EventKind int

const (
	// NewQueryShape fires when a (relation set, constrained column set)
	// combination appears for the first time.
	NewQueryShape EventKind = iota
	// NewPredicateColumn fires when a column is constrained for the first
	// time anywhere in the stream.
	NewPredicateColumn
	// NewCategoricalValue fires when a categorical column is compared to a
	// previously unseen constant (e.g. the zooSpec.dec = -100 anomaly class
	// of data-quality findings in Section 6.3 had its categorical analogue).
	NewCategoricalValue
)

func (k EventKind) String() string {
	switch k {
	case NewQueryShape:
		return "new-query-shape"
	case NewPredicateColumn:
		return "new-predicate-column"
	case NewCategoricalValue:
		return "new-categorical-value"
	default:
		return "unknown"
	}
}

// Monitor watches a stream of extracted access areas and notifies the
// operator about the occurrence of new predicates and query types, the
// stream extension described at the start of Section 4. It is safe for
// concurrent use.
type Monitor struct {
	mu      sync.Mutex
	shapes  map[string]struct{}
	columns map[string]struct{}
	catVals map[string]struct{}
	// Notify receives events; nil drops them (query via Events* counters).
	Notify func(Event)

	eventCounts map[EventKind]int
}

// NewMonitor returns an empty monitor.
func NewMonitor(notify func(Event)) *Monitor {
	return &Monitor{
		shapes:      make(map[string]struct{}),
		columns:     make(map[string]struct{}),
		catVals:     make(map[string]struct{}),
		Notify:      notify,
		eventCounts: make(map[EventKind]int),
	}
}

// Observe feeds one extracted access area to the monitor.
func (m *Monitor) Observe(rec Record, area *extract.AccessArea) {
	// The A set includes columns whose constraints were approximated away;
	// fall back to the CNF's columns for areas extracted without it.
	cols := area.Referenced
	if len(cols) == 0 {
		cols = area.CNF.Columns()
	}
	shape := strings.Join(area.Relations, ",") + "|" + strings.Join(cols, ",")

	m.mu.Lock()
	var events []Event
	if _, ok := m.shapes[shape]; !ok {
		m.shapes[shape] = struct{}{}
		events = append(events, Event{Kind: NewQueryShape, Detail: shape, Record: rec})
	}
	for _, c := range cols {
		if _, ok := m.columns[c]; !ok {
			m.columns[c] = struct{}{}
			events = append(events, Event{Kind: NewPredicateColumn, Detail: c, Record: rec})
		}
	}
	for _, cl := range area.CNF {
		for _, p := range cl {
			if p.Kind != predicate.ColumnConstant || p.Val.Kind != predicate.StringVal {
				continue
			}
			key := p.Column + "='" + p.Val.Str + "'"
			if _, ok := m.catVals[key]; !ok {
				m.catVals[key] = struct{}{}
				events = append(events, Event{Kind: NewCategoricalValue, Detail: key, Record: rec})
			}
		}
	}
	for _, e := range events {
		m.eventCounts[e.Kind]++
	}
	m.mu.Unlock()

	if m.Notify != nil {
		for _, e := range events {
			m.Notify(e)
		}
	}
}

// EventCount returns how many events of a kind have fired.
func (m *Monitor) EventCount(kind EventKind) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eventCounts[kind]
}

// KnownShapes returns the observed query shapes in sorted order.
func (m *Monitor) KnownShapes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shapes))
	for s := range m.shapes {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
