package wal

import (
	"bufio"
	"os"

	"repro/internal/qlog"
)

// CompactStats summarises one Compact pass.
type CompactStats struct {
	Segments int   // segments rewritten
	Dropped  int   // parse-failed records removed
	Deduped  int   // duplicate records folded into groups
	BytesIn  int64 // segment bytes before
	BytesOut int64 // segment bytes after
}

// famKey identifies one duplicate family: same statement fingerprint, same
// user, same literal statement text, same traffic class — class-tagged
// records never fold into a family of a different class, so expansion
// replays the classes exactly.
type famKey struct {
	fp    uint64
	user  string
	sql   string
	class string
}

// Compact rewrites every cold segment — sealed AND wholly below the
// compaction floor, i.e. fully covered by a persisted snapshot — dropping
// records whose statement never lexed (fingerprint 0: the mining pipeline
// re-rejects them on replay anyway) and collapsing duplicate (fingerprint,
// user, sql) families into delta-coded group entries that expand
// losslessly, every occurrence's (seq, time) preserved. The footer keeps
// the segment's original logical span, so offset arithmetic over the log
// stays exact even though physical records shrink. Rewrites are atomic
// (temp file, rename, directory fsync); a crash mid-compaction leaves
// either the old or the new file, both complete.
func (w *WAL) Compact() (CompactStats, error) {
	sp := compactStage.Start()
	defer sp.End()
	var st CompactStats
	floor := w.compactFloor.Load()

	w.segMu.Lock()
	var cold []*segMeta
	for _, m := range w.sealed {
		if m.end() <= floor && !m.compacted {
			cold = append(cold, m)
		}
	}
	w.segMu.Unlock()

	for _, m := range cold {
		if err := w.compactSegment(m, &st); err != nil {
			return st, err
		}
	}
	return st, nil
}

// compactSegment rewrites one cold segment in place.
func (w *WAL) compactSegment(m *segMeta, st *CompactStats) error {
	before, err := os.Stat(m.path)
	if err != nil {
		return err
	}

	// Pass 1: group records by family in first-seen order.
	type family struct {
		key   famKey
		seqs  []int
		times []int64
	}
	idx := make(map[famKey]int)
	var fams []*family
	dropped := 0
	err = scanFile(m.path, func(rec qlog.Record, fp uint64) error {
		if fp == 0 {
			dropped++
			return nil
		}
		k := famKey{fp: fp, user: rec.User, sql: rec.SQL, class: rec.Class}
		i, ok := idx[k]
		if !ok {
			i = len(fams)
			idx[k] = i
			fams = append(fams, &family{key: k})
		}
		f := fams[i]
		f.seqs = append(f.seqs, rec.Seq)
		f.times = append(f.times, rec.Time)
		return nil
	})
	if err != nil {
		return err
	}

	// Pass 2: rewrite. Singles stay plain record entries; families of two
	// or more become one group entry.
	tmp := m.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	var (
		records uint64
		minT    int64
		maxT    int64
		fpset   = make(map[uint64]struct{})
		buf     []byte
		deduped = 0
	)
	seeTime := func(t int64) {
		if records == 0 {
			minT, maxT = t, t
			return
		}
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	for _, fam := range fams {
		fpset[fam.key.fp] = struct{}{}
		if len(fam.seqs) == 1 {
			rec := qlog.Record{Seq: fam.seqs[0], Time: fam.times[0], User: fam.key.user, SQL: fam.key.sql, Class: fam.key.class}
			seeTime(rec.Time)
			records++
			buf = frame(buf[:0], encodeRecord(nil, &rec, fam.key.fp))
		} else {
			g := group{fp: fam.key.fp, user: fam.key.user, sql: fam.key.sql, class: fam.key.class, seqs: fam.seqs, times: fam.times}
			for _, t := range fam.times {
				seeTime(t)
				records++
			}
			deduped += len(fam.seqs) - 1
			buf = frame(buf[:0], encodeGroup(nil, &g))
		}
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}

	// Footer + trailer: span is the ORIGINAL logical count — the offset
	// arithmetic contract — while records reflects what is physically left.
	ft := &footer{span: m.span, records: records, minT: minT, maxT: maxT, fps: sortedFps(fpset)}
	entry := frame(nil, encodeFooter(nil, ft))
	var trailer [12]byte
	trailer[0] = byte(len(entry))
	trailer[1] = byte(len(entry) >> 8)
	trailer[2] = byte(len(entry) >> 16)
	trailer[3] = byte(len(entry) >> 24)
	copy(trailer[4:], footerMagic[:])
	if _, err := bw.Write(entry); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := bw.Write(trailer[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, m.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(w.dir); err != nil {
		return err
	}
	after, err := os.Stat(m.path)
	if err != nil {
		return err
	}

	w.segMu.Lock()
	m.records = records
	m.minT, m.maxT = minT, maxT
	m.fps = fpset
	m.compacted = true
	w.segMu.Unlock()

	st.Segments++
	st.Dropped += dropped
	st.Deduped += deduped
	st.BytesIn += before.Size()
	st.BytesOut += after.Size()
	compactionsRun.Inc()
	compactDropped.Add(int64(dropped))
	compactDeduped.Add(int64(deduped))
	return nil
}
