GO ?= go

.PHONY: build test vet racecheck fuzz bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel region-query, pivot-index, and pair-cache code paths must stay
# race-clean; qlog covers the streaming worker pool and the template cache,
# extract the concurrent template rebinds, sqlparser the fingerprint pass.
racecheck:
	$(GO) test -race ./internal/dbscan/... ./internal/distance/... \
		./internal/qlog/... ./internal/extract/... ./internal/sqlparser/...

# fuzz replays the checked-in seed corpora in regression mode (plain go test
# runs every f.Add seed) and then explores each target briefly. Raise
# FUZZTIME for a longer soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sqlparser/ -run=Fuzz
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sqlparser/ -run=NONE -fuzz=FuzzFingerprint -fuzztime=$(FUZZTIME)

# bench regenerates BENCH_clustering.json (brute-force vs pivot-index mining)
# and BENCH_pipeline.json (uncached vs template-cached extraction) at the 20k
# default mix. vet + racecheck gate it so perf numbers are never recorded off
# racy code.
bench: vet racecheck
	$(GO) run ./cmd/benchreport -exp clusterperf
	$(GO) run ./cmd/benchreport -exp pipelineperf

clean:
	$(GO) clean ./...
