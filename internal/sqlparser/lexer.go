package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// LexError is a lexical error with position information.
type LexError struct {
	Msg  string
	Line int
	Col  int
}

func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer turns SQL text into tokens. It handles line comments (--), block
// comments (/* */), single-quoted strings with ” escaping, double-quoted
// and [bracketed] and `backticked` identifiers, numbers (including
// scientific notation and leading-dot floats), and multi-character
// operators.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	lits int // literal tokens emitted so far (assigns Token.Slot)
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the whole input. The returned slice always ends with an EOF
// token on success.
func (lx *Lexer) Tokens() ([]Token, error) {
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &LexError{Msg: fmt.Sprintf(format, args...), Line: lx.line, Col: lx.col}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '-' && lx.peekByteAt(1) == '-':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekByteAt(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Msg: "unterminated block comment", Line: startLine, Col: startCol}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '#' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '#' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := lx.pos, lx.line, lx.col
	mk := func(kind TokenKind, text string) Token {
		t := Token{Kind: kind, Text: text, Pos: start, Line: line, Col: col}
		if kind == Number || kind == String || kind == Param {
			lx.lits++
			t.Slot = lx.lits
		}
		return t
	}
	if lx.pos >= len(lx.src) {
		return mk(EOF, ""), nil
	}
	b := lx.peekByte()
	switch {
	case b == '\'':
		text, err := lx.lexString()
		if err != nil {
			return Token{}, err
		}
		return mk(String, text), nil
	case b == '"' || b == '[' || b == '`':
		text, err := lx.lexQuotedIdent(b)
		if err != nil {
			return Token{}, err
		}
		return mk(Ident, text), nil
	case b >= '0' && b <= '9', b == '.' && lx.peekByteAt(1) >= '0' && lx.peekByteAt(1) <= '9':
		return mk(Number, lx.lexNumber()), nil
	case b == '@':
		lx.advance()
		var sb strings.Builder
		sb.WriteByte('@')
		for lx.pos < len(lx.src) {
			r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentPart(r) {
				break
			}
			sb.WriteString(lx.src[lx.pos : lx.pos+size])
			for i := 0; i < size; i++ {
				lx.advance()
			}
		}
		if sb.Len() == 1 {
			return Token{}, lx.errf("bare '@'")
		}
		return mk(Param, sb.String()), nil
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isIdentStart(r) {
		text := lx.lexIdent()
		upper := strings.ToUpper(text)
		if reserved[upper] {
			return mk(Keyword, upper), nil
		}
		return mk(Ident, text), nil
	}
	op, err := lx.lexOperator()
	if err != nil {
		return Token{}, err
	}
	return mk(Op, op), nil
}

func (lx *Lexer) lexString() (string, error) {
	startLine, startCol := lx.line, lx.col
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		b := lx.advance()
		if b == '\'' {
			if lx.peekByte() == '\'' { // escaped quote
				sb.WriteByte('\'')
				lx.advance()
				continue
			}
			return sb.String(), nil
		}
		sb.WriteByte(b)
	}
	return "", &LexError{Msg: "unterminated string literal", Line: startLine, Col: startCol}
}

func (lx *Lexer) lexQuotedIdent(open byte) (string, error) {
	startLine, startCol := lx.line, lx.col
	var close byte
	switch open {
	case '"':
		close = '"'
	case '[':
		close = ']'
	case '`':
		close = '`'
	}
	lx.advance()
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		b := lx.advance()
		if b == close {
			return sb.String(), nil
		}
		sb.WriteByte(b)
	}
	return "", &LexError{Msg: "unterminated quoted identifier", Line: startLine, Col: startCol}
}

func (lx *Lexer) lexNumber() string {
	var sb strings.Builder
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b >= '0' && b <= '9':
			sb.WriteByte(lx.advance())
		case b == '.' && !seenDot && !seenExp:
			seenDot = true
			sb.WriteByte(lx.advance())
		case (b == 'e' || b == 'E') && !seenExp && sb.Len() > 0:
			// Lookahead: exponent must be followed by digit or sign+digit.
			n1, n2 := lx.peekByteAt(1), lx.peekByteAt(2)
			if n1 >= '0' && n1 <= '9' || ((n1 == '+' || n1 == '-') && n2 >= '0' && n2 <= '9') {
				seenExp = true
				sb.WriteByte(lx.advance())
				if lx.peekByte() == '+' || lx.peekByte() == '-' {
					sb.WriteByte(lx.advance())
				}
			} else {
				return sb.String()
			}
		default:
			return sb.String()
		}
	}
	return sb.String()
}

func (lx *Lexer) lexIdent() string {
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			break
		}
		sb.WriteString(lx.src[lx.pos : lx.pos+size])
		for i := 0; i < size; i++ {
			lx.advance()
		}
	}
	return sb.String()
}

func (lx *Lexer) lexOperator() (string, error) {
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		lx.advance()
		lx.advance()
		if two == "!=" {
			return "<>", nil
		}
		return two, nil
	}
	b := lx.advance()
	switch b {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
		return string(b), nil
	}
	return "", lx.errf("unexpected character %q", string(b))
}
