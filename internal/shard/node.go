package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/serve"
)

// Node is one shard as the coordinator sees it. Both implementations carry
// the same admission semantics as serve.Server.IngestRecords: Ingest accepts
// a prefix of recs in order and returns how many made it plus the error that
// stopped it (nil when all did) — backpressure errors mean "retry the tail",
// transport errors mean "the shard may be down".
type Node interface {
	// Name identifies the node in logs, /shard/status and metrics.
	Name() string
	// Ingest forwards records in order; returns the accepted prefix length.
	Ingest(recs []qlog.Record) (int, error)
	// Flush blocks until everything accepted is mined and an epoch has run.
	Flush() error
	// Result returns the latest epoch's result and generation (nil, 0
	// before the first epoch).
	Result() (*core.Result, int64, error)
	// Stats returns the shard's cumulative pipeline statistics.
	Stats() (*qlog.Stats, error)
	// Telemetry returns the shard's ingest/epoch counters.
	Telemetry() (serve.Telemetry, error)
	// Traffic returns the shard's traffic-mining bundle: per-class results,
	// drift events and the tracked interface table. A shard running without
	// traffic mining answers an Enabled=false bundle, never an error.
	Traffic() (*WireTraffic, error)
	// Healthy probes liveness (cheap; called by the coordinator's health
	// loop).
	Healthy() bool
	// Close shuts the node down (LocalNode drains and snapshots the
	// embedded server; HTTPNode just drops the connection — remote shards
	// own their lifecycle).
	Close() error
}

// retryableIngest reports whether an Ingest error is backpressure — the
// shard is alive but throttling (queue full or mining-lag bound) — rather
// than a transport failure.
func retryableIngest(err error) bool {
	return err == serve.ErrQueueFull || err == serve.ErrMiningLag
}

// LocalNode is an in-process shard: a serve.Server reached by function call.
// The in-process topology runs N of these behind one router, sharing the
// stats registry and template cache, which is what makes the merged report
// byte-identical to a single batch mine (see TestCoordinatorMatchesBatch).
type LocalNode struct {
	name string
	srv  *serve.Server
}

// NewLocalNode wraps a serve.Server as a shard node.
func NewLocalNode(name string, srv *serve.Server) *LocalNode {
	return &LocalNode{name: name, srv: srv}
}

// Server exposes the embedded server (the in-process topology serves its
// /shard endpoints from it directly in tests).
func (n *LocalNode) Server() *serve.Server { return n.srv }

func (n *LocalNode) Name() string { return n.name }

func (n *LocalNode) Ingest(recs []qlog.Record) (int, error) {
	return n.srv.IngestRecords(recs)
}

func (n *LocalNode) Flush() error {
	n.srv.Flush()
	return nil
}

func (n *LocalNode) Result() (*core.Result, int64, error) {
	res, gen := n.srv.Latest()
	return res, gen, nil
}

func (n *LocalNode) Stats() (*qlog.Stats, error) {
	return n.srv.StatsSnapshot(), nil
}

func (n *LocalNode) Telemetry() (serve.Telemetry, error) {
	return n.srv.Telemetry(), nil
}

func (n *LocalNode) Traffic() (*WireTraffic, error) {
	return encodeTraffic(n.srv), nil
}

func (n *LocalNode) Healthy() bool { return true }

func (n *LocalNode) Close() error { return n.srv.Close() }

// HTTPNode is a remote shard: a skyserved -role shard process reached over
// its HTTP surface (POST /ingest NDJSON, POST /flush, GET /shard/result,
// GET /healthz).
type HTTPNode struct {
	name    string
	baseURL string
	client  *http.Client
}

// NewHTTPNode builds a node for the shard server at baseURL. A bare
// host:port (the -peers form) gets an implicit http:// scheme; a trailing
// slash is stripped. A nil client gets a 10s-timeout default.
func NewHTTPNode(name, baseURL string, client *http.Client) *HTTPNode {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &HTTPNode{name: name, baseURL: baseURL, client: client}
}

func (n *HTTPNode) Name() string { return n.name }

// Ingest posts recs as one NDJSON body. The shard's reply carries the
// accepted prefix length; a 429 maps to the matching backpressure sentinel
// so the coordinator's sender retries the tail instead of marking the shard
// down.
func (n *HTTPNode) Ingest(recs []qlog.Record) (int, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return 0, err
		}
	}
	resp, err := n.client.Post(n.baseURL+"/ingest", "application/x-ndjson", &buf)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var reply struct {
		Accepted int    `json:"accepted"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&reply); err != nil {
		return 0, fmt.Errorf("shard %s: decoding ingest reply: %w", n.name, err)
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		return reply.Accepted, nil
	case http.StatusTooManyRequests:
		return reply.Accepted, serve.ErrQueueFull
	case http.StatusServiceUnavailable:
		return reply.Accepted, serve.ErrClosed
	default:
		return reply.Accepted, fmt.Errorf("shard %s: ingest: HTTP %d: %s", n.name, resp.StatusCode, reply.Error)
	}
}

func (n *HTTPNode) Flush() error {
	resp, err := n.client.Post(n.baseURL+"/flush", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard %s: flush: HTTP %d", n.name, resp.StatusCode)
	}
	return nil
}

// shardStatusBody is the GET /shard/result payload (served by
// ResultHandler on the shard side).
type shardStatusBody struct {
	Result    *WireResult     `json:"result,omitempty"`
	Stats     *qlog.Stats     `json:"stats,omitempty"`
	Telemetry serve.Telemetry `json:"telemetry"`
}

func (n *HTTPNode) fetchStatus() (*shardStatusBody, error) {
	resp, err := n.client.Get(n.baseURL + "/shard/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s: result: HTTP %d", n.name, resp.StatusCode)
	}
	var body shardStatusBody
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return &body, nil
}

func (n *HTTPNode) Result() (*core.Result, int64, error) {
	body, err := n.fetchStatus()
	if err != nil {
		return nil, 0, err
	}
	if body.Result == nil {
		return nil, 0, nil
	}
	return DecodeResult(body.Result), body.Result.Generation, nil
}

func (n *HTTPNode) Stats() (*qlog.Stats, error) {
	body, err := n.fetchStatus()
	if err != nil {
		return nil, err
	}
	return body.Stats, nil
}

// Telemetry hits the counters-only endpoint: the coordinator's quiesce loop
// polls it every couple of milliseconds, so it must not drag the full epoch
// result over the wire each time.
func (n *HTTPNode) Telemetry() (serve.Telemetry, error) {
	resp, err := n.client.Get(n.baseURL + "/shard/telemetry")
	if err != nil {
		return serve.Telemetry{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.Telemetry{}, fmt.Errorf("shard %s: telemetry: HTTP %d", n.name, resp.StatusCode)
	}
	var tel serve.Telemetry
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&tel); err != nil {
		return serve.Telemetry{}, err
	}
	return tel, nil
}

// Traffic fetches the shard's traffic bundle. Fetched only at Flush (and
// SeedMerge), so the payload size — the full interface table rides along —
// is off the quiesce-poll path.
func (n *HTTPNode) Traffic() (*WireTraffic, error) {
	resp, err := n.client.Get(n.baseURL + "/shard/traffic")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard %s: traffic: HTTP %d", n.name, resp.StatusCode)
	}
	var wt WireTraffic
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&wt); err != nil {
		return nil, err
	}
	return &wt, nil
}

func (n *HTTPNode) Healthy() bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.baseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

func (n *HTTPNode) Close() error { return nil }

// ResultHandler wraps a shard server's HTTP surface with the extra endpoints
// the coordinator needs: GET /shard/result (the latest epoch result in wire
// form plus pipeline stats and telemetry in a single round trip), GET
// /shard/telemetry (counters only — cheap enough for the coordinator's
// quiesce poll) and GET /shard/traffic (the traffic-mining bundle).
// Everything else falls through to the server's own handler.
func ResultHandler(s *serve.Server) http.Handler {
	base := s.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/shard/result", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		res, gen := s.Latest()
		body := shardStatusBody{
			Result:    EncodeResult(res, gen),
			Stats:     s.StatsSnapshot(),
			Telemetry: s.Telemetry(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	mux.HandleFunc("/shard/telemetry", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Telemetry())
	})
	mux.HandleFunc("/shard/traffic", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(encodeTraffic(s))
	})
	return mux
}
