package predicate

import (
	"testing"
)

func cnfOf(t *testing.T, e Expr) CNF {
	t.Helper()
	c, _ := ToCNF(e, 0)
	return c
}

func TestConsolidateMergeWithinClause(t *testing.T) {
	// a < 3 OR a < 5 => a < 5.
	c := cnfOf(t, NewOr(leafP("a", Lt, 3), leafP("a", Lt, 5)))
	out := Consolidate(c)
	if len(out) != 1 || len(out[0]) != 1 || out[0][0].Op != Lt || out[0][0].Val.Num != 5 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateClauseTautology(t *testing.T) {
	// (a > 1 OR a <= 1) AND b < 2 => b < 2.
	c := cnfOf(t, NewAnd(NewOr(leafP("a", Gt, 1), leafP("a", Le, 1)), leafP("b", Lt, 2)))
	out := Consolidate(c)
	if len(out) != 1 || out[0][0].Column != "b" {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateCrossClauseRedundancy(t *testing.T) {
	// a >= 1 AND a >= 3 => a >= 3.
	c := cnfOf(t, NewAnd(leafP("a", Ge, 1), leafP("a", Ge, 3)))
	out := Consolidate(c)
	if len(out) != 1 || out[0][0].Op != Ge || out[0][0].Val.Num != 3 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateContradiction(t *testing.T) {
	// a > 5 AND a < 2 => FALSE.
	c := cnfOf(t, NewAnd(leafP("a", Gt, 5), leafP("a", Lt, 2)))
	out := Consolidate(c)
	if !out.IsFalse() {
		t.Errorf("out = %s, want FALSE", out)
	}
	// Equality vs disequality: a = 5 AND a <> 5 => FALSE.
	c = cnfOf(t, NewAnd(leafP("a", Eq, 5), leafP("a", Ne, 5)))
	if out := Consolidate(c); !out.IsFalse() {
		t.Errorf("out = %s, want FALSE", out)
	}
}

func TestConsolidateStringContradiction(t *testing.T) {
	c := CNF{
		{CC("s.class", Eq, Str("star"))},
		{CC("s.class", Eq, Str("galaxy"))},
	}
	if out := Consolidate(c); !out.IsFalse() {
		t.Errorf("out = %s, want FALSE", out)
	}
	// Same value twice is fine and deduplicates.
	c = CNF{
		{CC("s.class", Eq, Str("star"))},
		{CC("s.class", Eq, Str("star"))},
	}
	out := Consolidate(c)
	if len(out) != 1 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateBetweenStaysTight(t *testing.T) {
	// a >= 1 AND a <= 8 stays two clauses (the BETWEEN shape of §4.1).
	c := cnfOf(t, NewAnd(leafP("a", Ge, 1), leafP("a", Le, 8)))
	out := Consolidate(c)
	if len(out) != 2 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateInexpressibleKeepsOriginals(t *testing.T) {
	// a >= 1 AND a <= 8 AND a <> 5: multi-piece bounded set, inexpressible
	// as merged atomic predicates; the original clauses must survive.
	c := cnfOf(t, NewAnd(leafP("a", Ge, 1), leafP("a", Le, 8), leafP("a", Ne, 5)))
	out := Consolidate(c)
	if out.IsTrue() || out.IsFalse() {
		t.Fatalf("out = %s", out)
	}
	env := map[string]float64{"a": 5}
	if evalCNF(out, env) {
		t.Error("a=5 should not satisfy")
	}
	env["a"] = 4
	if !evalCNF(out, env) {
		t.Error("a=4 should satisfy")
	}
	env["a"] = 9
	if evalCNF(out, env) {
		t.Error("a=9 should not satisfy")
	}
}

func TestConsolidatePointIntersection(t *testing.T) {
	// a >= 5 AND a <= 5 => a = 5.
	c := cnfOf(t, NewAnd(leafP("a", Ge, 5), leafP("a", Le, 5)))
	out := Consolidate(c)
	if len(out) != 1 || out[0][0].Op != Eq || out[0][0].Val.Num != 5 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateKeepsColumnColumn(t *testing.T) {
	c := CNF{
		{Cols("T.u", Eq, "S.u")},
		{CC("T.v", Lt, Number(3))},
	}
	out := Consolidate(c)
	if len(out) != 2 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateFalseShortCircuit(t *testing.T) {
	c := CNF{{}}
	if out := Consolidate(c); !out.IsFalse() {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateMultiPredClausesUntouchedAcrossColumns(t *testing.T) {
	// (a < 1 OR b > 2) cannot merge across columns.
	c := cnfOf(t, NewOr(leafP("a", Lt, 1), leafP("b", Gt, 2)))
	out := Consolidate(c)
	if len(out) != 1 || len(out[0]) != 2 {
		t.Errorf("out = %s", out)
	}
}

func TestConsolidateNEAndRay(t *testing.T) {
	// a <> 5 AND a > 7 => a > 7 (the NE is redundant).
	c := cnfOf(t, NewAnd(leafP("a", Ne, 5), leafP("a", Gt, 7)))
	out := Consolidate(c)
	if len(out) != 1 || out[0][0].Op != Gt || out[0][0].Val.Num != 7 {
		t.Errorf("out = %s", out)
	}
}
