package olapclus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

func TestExactDistanceIdenticalVsDifferentConstants(t *testing.T) {
	ex := extract.New(skyserver.Schema())
	a1, _ := ex.ExtractSQL("SELECT z FROM Photoz WHERE objid = 100")
	a2, _ := ex.ExtractSQL("SELECT z FROM Photoz WHERE objid = 100")
	a3, _ := ex.ExtractSQL("SELECT z FROM Photoz WHERE objid = 200")
	if d := ExactDistance(a1, a2); d != 0 {
		t.Errorf("identical areas d = %v", d)
	}
	if d := ExactDistance(a1, a3); d != 1 {
		t.Errorf("different constants d = %v, want 1 (no shared predicate)", d)
	}
}

// TestExactShattersEqualityCluster reproduces Section 6.4: what our method
// groups into a single cluster, exact matching splits into one cluster per
// distinct constant.
func TestExactShattersEqualityCluster(t *testing.T) {
	ex := extract.New(skyserver.Schema())
	var areas []*extract.AccessArea
	var weights []int
	distinct := 50
	for i := 0; i < distinct; i++ {
		a, err := ex.ExtractSQL(fmt.Sprintf("SELECT z FROM Photoz WHERE objid = %d", 1000+i))
		if err != nil {
			t.Fatal(err)
		}
		areas = append(areas, a)
		weights = append(weights, 10) // 10 identical queries each
	}
	res := ClusterExact(areas, weights, 0.1, 8)
	if res.NumClusters != distinct {
		t.Errorf("exact clusters = %d, want %d (one per constant)", res.NumClusters, distinct)
	}

	// Our distance groups them all (given seeded access stats).
	stats := schema.NewStats()
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 200, Seed: 1})
	skyserver.SeedStats(db, stats)
	m := &distance.Metric{Stats: stats}
	ours := ClusterRawConj(areas, weights, m, 0.06, 8)
	if ours.NumClusters != 1 {
		t.Errorf("our clusters = %d, want 1", ours.NumClusters)
	}
}

func TestRawAreaKeepsPredicatesAsIs(t *testing.T) {
	// FULL OUTER JOIN: the exact mapping drops the ON constraint
	// (Example 2); the raw representation keeps it.
	raw, err := RawAreaSQL(skyserver.Schema(), "SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.CNF) != 1 {
		t.Errorf("raw CNF = %s, want the join predicate kept", raw.CNF)
	}
	ex := extract.New(skyserver.Schema())
	mapped, _ := ex.ExtractSQL("SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID")
	if !mapped.CNF.IsTrue() {
		t.Errorf("mapped CNF = %s, want TRUE", mapped.CNF)
	}
}

func TestRawAreaKeepsHavingAggregates(t *testing.T) {
	raw, err := RawAreaSQL(skyserver.Schema(), "SELECT specobjid, COUNT(*) FROM galSpecLine WHERE specobjid >= 10 GROUP BY specobjid HAVING COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cl := range raw.CNF {
		for _, p := range cl {
			if p.Column == "COUNT(*)" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("raw CNF = %s, want COUNT(*) pseudo-column kept", raw.CNF)
	}
}

func TestRawAreaIgnoresNot(t *testing.T) {
	// NOT (x < 5) raw-extracts as x < 5 — the semantic inversion is lost.
	raw, err := RawAreaSQL(skyserver.Schema(), "SELECT * FROM Photoz WHERE NOT (z < 5)")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.CNF) != 1 || raw.CNF[0][0].Op.String() != "<" {
		t.Errorf("raw CNF = %s", raw.CNF)
	}
}

// TestRawConjBreaksVariantClusters reproduces Section 6.5: clusters whose
// members mix plain and transformed forms fragment when predicates are used
// as-is.
func TestRawConjBreaksVariantClusters(t *testing.T) {
	stats := schema.NewStats()
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 200, Seed: 1})
	skyserver.SeedStats(db, stats)
	metric := &distance.Metric{Stats: stats}
	ex := extract.New(skyserver.Schema())

	// 30 plain range queries + 30 vacuous-HAVING variants over the same
	// window.
	var sqls []string
	for i := 0; i < 30; i++ {
		lo := 1400000000000000000 + int64(i)*1e15
		hi := lo + 2e16
		sqls = append(sqls, fmt.Sprintf("SELECT * FROM galSpecLine WHERE specobjid BETWEEN %d AND %d", lo, hi))
		sqls = append(sqls, fmt.Sprintf("SELECT specobjid, COUNT(*) FROM galSpecLine WHERE specobjid BETWEEN %d AND %d GROUP BY specobjid HAVING COUNT(*) > 1", lo, hi))
	}
	var mapped, raw []*extract.AccessArea
	var weights []int
	for _, q := range sqls {
		ma, err := ex.ExtractSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RawAreaSQL(skyserver.Schema(), q)
		if err != nil {
			t.Fatal(err)
		}
		mapped = append(mapped, ma)
		raw = append(raw, ra)
		weights = append(weights, 1)
	}
	oursRes := ClusterRawConj(mapped, weights, metric, 0.06, 8)
	rawRes := ClusterRawConj(raw, weights, metric, 0.06, 8)
	if oursRes.NumClusters != 1 {
		t.Errorf("mapped clusters = %d, want 1", oursRes.NumClusters)
	}
	// Raw representation separates plain from HAVING forms (or drops one
	// population to noise): it must NOT produce a single unified cluster.
	if rawRes.NumClusters == 1 && rawRes.NoiseCount() == 0 {
		t.Errorf("raw clusters = %d with no noise — variants should fragment", rawRes.NumClusters)
	}
}

func TestRawAreaCollectsAllPredicateShapes(t *testing.T) {
	raw, err := RawAreaSQL(skyserver.Schema(), `SELECT * FROM SpecObjAll
		WHERE plate BETWEEN 100 AND 200
		AND class LIKE 'STAR'
		AND mjd IN (51578, 51579)
		AND z > ANY (SELECT z FROM Photoz WHERE z < 0.5)
		AND ra = (SELECT ra FROM zooSpec WHERE dec > 60)`)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, cl := range raw.CNF {
		for _, p := range cl {
			keys[p.Column] = true
			if p.Kind == 1 { // column-column
				keys[p.Column2] = true
			}
		}
	}
	// Raw resolution has no scoping: subquery columns resolve against the
	// first relation that has them (SpecObjAll here) — part of what makes
	// the raw representation lossy.
	for _, want := range []string{"SpecObjAll.plate", "SpecObjAll.class", "SpecObjAll.mjd", "SpecObjAll.z", "SpecObjAll.dec"} {
		if !keys[want] {
			t.Errorf("raw predicates missing %s: %s", want, raw.CNF)
		}
	}
	// Relations include subquery relations (deduplicated, input order kept
	// per collect order then deduped).
	joined := strings.Join(raw.Relations, ",")
	for _, want := range []string{"SpecObjAll", "Photoz", "zooSpec"} {
		if !strings.Contains(joined, want) {
			t.Errorf("relations = %v, missing %s", raw.Relations, want)
		}
	}
}
