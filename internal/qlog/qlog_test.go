package qlog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/skyserver"
)

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 0, Time: 10, User: "alice", SQL: "SELECT * FROM T WHERE u > 1"},
		{Seq: 1, Time: 20, User: "bob", SQL: `SELECT * FROM S WHERE c = 'x,y' AND d = 'q"z'`},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].SQL != recs[1].SQL || got[1].User != "bob" {
		t.Errorf("got = %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 0, Time: 10, User: "alice", SQL: "SELECT * FROM T\nWHERE u > 1"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].SQL != recs[0].SQL {
		t.Errorf("got = %+v", got)
	}
}

func TestReadCSVBadRow(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("seq,time,user,sql\nx,0,u,SELECT 1\n"))
	if err == nil {
		t.Error("expected error for bad seq")
	}
}

func pipelineOverLog(t *testing.T, n int) ([]AreaRecord, *Stats) {
	t.Helper()
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: n, Seed: 42})
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	p := &Pipeline{Extractor: extract.New(skyserver.Schema())}
	return p.Run(recs)
}

func TestPipelineCoverage(t *testing.T) {
	areas, stats := pipelineOverLog(t, 3000)
	if stats.Total != 3000 {
		t.Fatalf("total = %d", stats.Total)
	}
	// Section 6.1: ~99.4% of the log extracts; our synthetic error fraction
	// is ~0.54% plus a handful of admin statements.
	cov := stats.Coverage()
	if cov < 0.985 || cov >= 1.0 {
		t.Errorf("coverage = %v, want ~0.99", cov)
	}
	if len(areas) != stats.Extracted {
		t.Errorf("areas = %d, extracted = %d", len(areas), stats.Extracted)
	}
	if stats.ParseFailures["syntax"] == 0 {
		t.Error("expected syntax failures in the synthetic log")
	}
	if stats.ParseFailures["udf"] == 0 {
		t.Error("expected UDF failures")
	}
	if stats.ParseFailures["non-select"] == 0 {
		t.Error("expected admin DDL failures")
	}
	if stats.Truncated == 0 {
		t.Error("expected at least one >35-predicate query")
	}
	// Stage timings populated.
	if stats.Parse.Count == 0 || stats.Extract.Count == 0 || stats.CNF.Count == 0 {
		t.Errorf("stage stats empty: %+v", stats)
	}
	if stats.Parse.Max < stats.Parse.Min {
		t.Error("stage min/max inverted")
	}
}

func TestStageCountsConsistent(t *testing.T) {
	// Mix of clean statements, a parse failure, and an extraction failure
	// (self-join): the three extraction stages must report one observation
	// per successfully extracted statement — no more, no fewer — or the
	// §6.6 stage table's Counts disagree with each other.
	recs := []Record{
		{Seq: 0, User: "a", SQL: "SELECT * FROM PhotoObjAll WHERE ra < 10"},
		{Seq: 1, User: "a", SQL: "THIS IS NOT SQL"},
		{Seq: 2, User: "b", SQL: "SELECT * FROM PhotoObjAll p, PhotoObjAll q WHERE p.ra < q.ra"},
		{Seq: 3, User: "b", SQL: "SELECT * FROM SpecObjAll WHERE mjd > 52000"},
		{Seq: 4, User: "c", SQL: "SELECT * FROM zooSpec WHERE dec BETWEEN 30 AND 70"},
	}
	for _, workers := range []int{1, 4} {
		p := &Pipeline{Extractor: extract.New(skyserver.Schema()), Workers: workers}
		areas, st := p.Run(recs)
		if st.ExtractFailures == 0 {
			t.Fatalf("workers=%d: expected an extraction failure in the fixture", workers)
		}
		if st.Extract.Count != st.Extracted {
			t.Errorf("workers=%d: Extract.Count = %d, Extracted = %d", workers, st.Extract.Count, st.Extracted)
		}
		if st.Extract.Count != st.CNF.Count || st.CNF.Count != st.Consolidate.Count {
			t.Errorf("workers=%d: stage counts disagree: extract %d, cnf %d, consolidate %d",
				workers, st.Extract.Count, st.CNF.Count, st.Consolidate.Count)
		}
		if st.Parse.Count != st.Total {
			t.Errorf("workers=%d: Parse.Count = %d, Total = %d", workers, st.Parse.Count, st.Total)
		}
		if len(areas) != st.Extracted {
			t.Errorf("workers=%d: areas %d != extracted %d", workers, len(areas), st.Extracted)
		}
	}
}

func TestPipelinePreservesOrder(t *testing.T) {
	areas, _ := pipelineOverLog(t, 500)
	last := -1
	for _, ar := range areas {
		if ar.Record.Seq <= last {
			t.Fatalf("order broken at seq %d after %d", ar.Record.Seq, last)
		}
		last = ar.Record.Seq
	}
}

func TestPipelineSerialMatchesParallel(t *testing.T) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 800, Seed: 7})
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, User: e.User, SQL: e.SQL}
	}
	p1 := &Pipeline{Extractor: extract.New(skyserver.Schema()), Workers: 1}
	p8 := &Pipeline{Extractor: extract.New(skyserver.Schema()), Workers: 8}
	a1, s1 := p1.Run(recs)
	a8, s8 := p8.Run(recs)
	if len(a1) != len(a8) || s1.Extracted != s8.Extracted {
		t.Fatalf("serial %d vs parallel %d", len(a1), len(a8))
	}
	for i := range a1 {
		if a1[i].Area.Key() != a8[i].Area.Key() {
			t.Fatalf("area %d differs", i)
		}
	}
}

func TestMonitorEvents(t *testing.T) {
	var events []Event
	m := NewMonitor(func(e Event) { events = append(events, e) })
	ex := extract.New(skyserver.Schema())

	a1, err := ex.ExtractSQL("SELECT * FROM PhotoObjAll WHERE ra < 10")
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(Record{Seq: 1}, a1)
	if m.EventCount(NewQueryShape) != 1 || m.EventCount(NewPredicateColumn) != 1 {
		t.Fatalf("counts = shape %d col %d", m.EventCount(NewQueryShape), m.EventCount(NewPredicateColumn))
	}
	// Same shape again: no new events.
	a2, _ := ex.ExtractSQL("SELECT * FROM PhotoObjAll WHERE ra < 20")
	m.Observe(Record{Seq: 2}, a2)
	if m.EventCount(NewQueryShape) != 1 {
		t.Error("duplicate shape should not fire")
	}
	// New column on the same relation: new shape + new column.
	a3, _ := ex.ExtractSQL("SELECT * FROM PhotoObjAll WHERE dec < 0")
	m.Observe(Record{Seq: 3}, a3)
	if m.EventCount(NewQueryShape) != 2 || m.EventCount(NewPredicateColumn) != 2 {
		t.Error("new column should fire both events")
	}
	// Categorical value.
	a4, _ := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE class = 'STAR'")
	m.Observe(Record{Seq: 4}, a4)
	if m.EventCount(NewCategoricalValue) != 1 {
		t.Error("categorical value should fire")
	}
	a5, _ := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE class = 'QSO'")
	m.Observe(Record{Seq: 5}, a5)
	if m.EventCount(NewCategoricalValue) != 2 {
		t.Error("second categorical value should fire")
	}
	if len(events) == 0 || len(m.KnownShapes()) != 3 {
		t.Errorf("events = %d, shapes = %v", len(events), m.KnownShapes())
	}
}

func TestReadSkyServerCSV(t *testing.T) {
	raw := `theTime,clientIP,requestor,server,dbname,statement,error
2012-04-01 10:15:00,131.111.0.1,anon-1,SKY1,BESTDR9,SELECT TOP 10 * FROM PhotoObjAll,0
2012-04-01 10:15:04,131.111.0.2,anon-2,SKY1,BESTDR9,"SELECT ra, dec FROM SpecObjAll WHERE ra < 180",0
2012-04-01 10:15:09,131.111.0.1,anon-1,SKY1,BESTDR9,,0
`
	recs, err := ReadSkyServerCSV(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d (empty statement must be skipped)", len(recs))
	}
	if recs[0].User != "131.111.0.1" && recs[0].User != "anon-1" {
		t.Errorf("user = %q", recs[0].User)
	}
	if !strings.Contains(recs[1].SQL, "SpecObjAll") {
		t.Errorf("sql = %q", recs[1].SQL)
	}
	if recs[1].Time-recs[0].Time != 4 {
		t.Errorf("times = %d, %d; want 4s apart", recs[0].Time, recs[1].Time)
	}
}

func TestReadSkyServerCSVAliases(t *testing.T) {
	raw := "seq,user,sql\n7,alice,SELECT 1\n8,bob,SELECT 2\n"
	recs, err := ReadSkyServerCSV(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 7 || recs[0].User != "alice" {
		t.Fatalf("records = %+v", recs)
	}
}

func TestReadSkyServerCSVNoStatementColumn(t *testing.T) {
	if _, err := ReadSkyServerCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("expected error for missing statement column")
	}
}

func TestParseLogTime(t *testing.T) {
	if v := parseLogTime("1333274100", 0); v != 1333274100 {
		t.Errorf("epoch = %d", v)
	}
	if v := parseLogTime("2012-04-01 10:15:00", 0); v <= 0 {
		t.Errorf("datetime = %d", v)
	}
	if v := parseLogTime("not-a-time", 42); v != 42 {
		t.Errorf("fallback = %d", v)
	}
}

func TestLargeScalePipelineThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test")
	}
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 50000, Seed: 99})
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, User: e.User, SQL: e.SQL}
	}
	p := &Pipeline{Extractor: extract.New(skyserver.Schema())}
	areas, stats := p.Run(recs)
	if stats.Coverage() < 0.985 {
		t.Errorf("coverage = %v", stats.Coverage())
	}
	if len(areas) != stats.Extracted {
		t.Errorf("areas %d != extracted %d", len(areas), stats.Extracted)
	}
	// The paper's machine did ~2,200 q/s; even single-digit multiples of
	// that leave huge headroom, so assert a conservative floor to catch
	// pathological regressions (e.g. the CNF cap failing).
	qps := float64(stats.Total) / stats.Elapsed.Seconds()
	if qps < 2000 {
		t.Errorf("throughput = %.0f q/s", qps)
	}
}
