// Command aamine runs the end-to-end access-area mining pipeline over a
// query log (CSV or JSONL from loggen, or any log in the same format) and
// prints a Table-1-style report: per cluster the cardinality, distinct
// users, area coverage, object coverage and the aggregated access area.
//
// Usage:
//
//	loggen -n 20000 -o log.csv && aamine -log log.csv
//	aamine -synthetic 20000        # generate and mine in one go
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

func main() {
	logPath := flag.String("log", "", "query log file (csv or jsonl by extension)")
	synthetic := flag.Int("synthetic", 0, "generate a synthetic log of this size instead of reading one")
	seed := flag.Int64("seed", 42, "seed for synthetic generation and sampling")
	eps := flag.Float64("eps", 0.06, "DBSCAN eps")
	autoEps := flag.Bool("autoeps", false, "derive eps from the k-distance knee (overrides -eps)")
	minPts := flag.Int("minpts", 8, "DBSCAN minPts (weighted by query multiplicity)")
	sample := flag.Int("sample", 0, "cap on distinct areas clustered (0 = all)")
	top := flag.Int("top", 30, "clusters to print")
	analyze := flag.Bool("analyze", false, "print session/bot/classification analysis of the log")
	trendWindow := flag.Int64("trend", 0, "also mine in time windows of this many seconds and print trend events")
	format := flag.String("format", "text", "output format: text, csv, or json")
	skyFormat := flag.Bool("skyformat", false, "treat -log as a SkyServer SqlLog CSV export (header-mapped columns)")
	mode := flag.String("mode", "endpoint", "d_pred mode: endpoint or literal")
	alg := flag.String("alg", "dbscan", "clustering algorithm: dbscan or optics")
	rows := flag.Int("rows", 2000, "synthetic database rows per table (for coverage)")
	flag.Parse()

	var recs []qlog.Record
	switch {
	case *synthetic > 0:
		entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: *synthetic, Seed: *seed})
		for _, e := range entries {
			recs = append(recs, qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL})
		}
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch {
		case *skyFormat:
			recs, err = qlog.ReadSkyServerCSV(f)
		case strings.HasSuffix(*logPath, ".jsonl"):
			recs, err = qlog.ReadJSONL(f)
		default:
			recs, err = qlog.ReadCSV(f)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "aamine: need -log FILE or -synthetic N")
		os.Exit(2)
	}

	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: *rows, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)

	dmode := distance.ModeEndpoint
	if *mode == "literal" {
		dmode = distance.ModePaperLiteral
	}
	algorithm := core.AlgDBSCAN
	if *alg == "optics" {
		algorithm = core.AlgOPTICS
	}
	miner := core.NewMiner(core.Config{
		Schema: skyserver.Schema(), Stats: stats,
		Eps: *eps, MinPts: *minPts, Mode: dmode, AutoEps: *autoEps,
		Algorithm:  algorithm,
		SampleSize: *sample, Seed: *seed,
	})
	res := miner.MineRecords(recs)
	res.AttachCoverage(db)

	if *analyze {
		printAnalysis(recs)
	}
	if *trendWindow > 0 {
		windows := miner.MineWindows(recs, *trendWindow)
		fmt.Print(core.TrendReport(windows, core.Trends(windows)))
	}

	if *autoEps {
		fmt.Printf("auto-selected eps: %.4f\n", res.ChosenEps)
	}
	f, err := report.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	if err := report.Write(os.Stdout, res, f, report.Options{Top: *top, Coverage: true}); err != nil {
		fatal(err)
	}
}

// printAnalysis reports the log-understanding extensions: sessions, bots,
// query intent, and the SDSS-Log-Viewer-style classifications.
func printAnalysis(recs []qlog.Record) {
	sessions := qlog.Sessionize(recs, 1800)
	profiles := qlog.ProfileUsers(recs, 1800)
	bots := 0
	for _, p := range profiles {
		if p.Bot() {
			bots++
		}
	}
	fmt.Printf("analysis: %d users, %d sessions, %d bot-like users\n", len(profiles), len(sessions), bots)

	ex := extract.New(skyserver.Schema())
	intents := map[qlog.Intent]int{}
	var areas []*extract.AccessArea
	for _, r := range recs {
		sel, err := sqlparser.ParseSelect(r.SQL)
		if err != nil {
			continue
		}
		intents[qlog.ClassifyIntent(sel)]++
		if a, err := ex.Extract(sel); err == nil {
			areas = append(areas, a)
		}
	}
	counts := qlog.Classify(areas)
	fmt.Printf("analysis: %d test vs %d final queries; sky areas:", intents[qlog.TestQuery], intents[qlog.FinalQuery])
	for _, k := range []qlog.SkyAreaKind{qlog.RectangularSkyArea, qlog.BandSkyArea, qlog.SinglePointSkyArea, qlog.OtherSkyArea} {
		fmt.Printf(" %s=%d", k, counts.Sky[k])
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aamine:", err)
	os.Exit(1)
}
