package distance

import (
	"math"
	"sync"
	"testing"
)

// The dynamic cache must answer like the raw function, count evaluations
// once per distinct pair, and serve repeats from memory.
func TestDynamicPairCacheMemoizes(t *testing.T) {
	calls := 0
	fn := func(i, j int) float64 {
		calls++
		return float64(i*100 + j)
	}
	c := NewDynamicPairCache(fn)

	if d := c.Dist(3, 7); d != 307 {
		t.Fatalf("Dist(3,7) = %v", d)
	}
	// Symmetric lookup and repeat are both hits.
	if d := c.Dist(7, 3); d != 307 {
		t.Fatalf("Dist(7,3) = %v", d)
	}
	if d := c.Dist(3, 7); d != 307 {
		t.Fatalf("repeat Dist(3,7) = %v", d)
	}
	if calls != 1 || c.Evals() != 1 || c.Hits() != 2 {
		t.Errorf("calls=%d evals=%d hits=%d, want 1/1/2", calls, c.Evals(), c.Hits())
	}
	if c.Dist(5, 5) != 0 {
		t.Error("identity pair not zero")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// Growing the point set must not disturb stored pairs: distances computed
// "in an earlier epoch" stay hits after new indices appear — the property
// the epoch-based miner relies on.
func TestDynamicPairCacheSurvivesGrowth(t *testing.T) {
	var mu sync.Mutex
	evaluated := map[[2]int]int{}
	fn := func(i, j int) float64 {
		mu.Lock()
		evaluated[[2]int{i, j}]++
		mu.Unlock()
		return 1 / float64(i+j+1)
	}
	c := NewDynamicPairCache(fn)

	// Epoch 1: points 0..9.
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			c.Dist(i, j)
		}
	}
	epoch1Evals := c.Evals()
	if epoch1Evals != 45 {
		t.Fatalf("epoch 1 evals = %d, want 45", epoch1Evals)
	}

	// Epoch 2: points 0..14 — a full re-scan only evaluates pairs touching
	// the 5 new points.
	for i := 0; i < 15; i++ {
		for j := i + 1; j < 15; j++ {
			c.Dist(i, j)
		}
	}
	newEvals := c.Evals() - epoch1Evals
	if want := int64(15*14/2 - 45); newEvals != want {
		t.Errorf("epoch 2 evals = %d, want %d (new-point pairs only)", newEvals, want)
	}
	for pair, n := range evaluated {
		if n != 1 {
			t.Errorf("pair %v evaluated %d times", pair, n)
		}
	}
}

// Concurrent lookups must agree and never corrupt stored values (run under
// -race via the Makefile gate).
func TestDynamicPairCacheConcurrent(t *testing.T) {
	fn := func(i, j int) float64 { return math.Sqrt(float64(i*j + 1)) }
	c := NewDynamicPairCache(fn)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 2000; k++ {
				i, j := (k+w)%50, (k*7)%50
				got := c.Dist(i, j)
				want := 0.0
				if i != j {
					want = fn(min(i, j), max(i, j))
				}
				if got != want {
					t.Errorf("Dist(%d,%d) = %v, want %v", i, j, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
