package obs

import (
	"testing"
	"time"
)

// TestSpanNesting runs an outer span with two inner spans and checks each
// stage's histogram saw exactly its own completions, with the outer
// duration at least covering the inner ones.
func TestSpanNesting(t *testing.T) {
	SetSpansEnabled(true)
	outer := NewStage("test_outer")
	inner := NewStage("test_inner")

	so := outer.Start()
	for i := 0; i < 2; i++ {
		si := inner.Start()
		time.Sleep(time.Millisecond)
		si.End()
	}
	so.End()

	if got := outer.Count(); got != 1 {
		t.Errorf("outer count = %d, want 1", got)
	}
	if got := inner.Count(); got != 2 {
		t.Errorf("inner count = %d, want 2", got)
	}
	if outer.hist.Sum() < inner.hist.Sum() {
		t.Errorf("outer sum %v < inner sum %v", outer.hist.Sum(), inner.hist.Sum())
	}
}

// TestSpanDisabledZeroAllocs is the hot-path contract: with spans disabled,
// Start/End must not allocate (and not observe anything).
func TestSpanDisabledZeroAllocs(t *testing.T) {
	st := NewStage("test_disabled")
	SetSpansEnabled(false)
	defer SetSpansEnabled(true)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := st.Start()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled span path allocates %v per run, want 0", allocs)
	}
	if got := st.Count(); got != 0 {
		t.Errorf("disabled spans recorded %d observations", got)
	}
}

// TestSpanEnabledZeroAllocs: the enabled path is also allocation-free —
// spans are plain values and observations are atomic adds.
func TestSpanEnabledZeroAllocs(t *testing.T) {
	st := NewStage("test_enabled_allocs")
	SetSpansEnabled(true)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := st.Start()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("enabled span path allocates %v per run, want 0", allocs)
	}
}

// TestNilStage checks nil receivers are inert on every method.
func TestNilStage(t *testing.T) {
	var st *Stage
	sp := st.Start()
	sp.End()
	st.Observe(time.Second)
	if st.Count() != 0 {
		t.Error("nil stage counted")
	}
}

// TestStageObserve feeds a pre-measured duration through.
func TestStageObserve(t *testing.T) {
	SetSpansEnabled(true)
	st := NewStage("test_observe")
	st.Observe(3 * time.Millisecond)
	if st.Count() != 1 {
		t.Errorf("count = %d, want 1", st.Count())
	}
	SetSpansEnabled(false)
	st.Observe(3 * time.Millisecond)
	SetSpansEnabled(true)
	if st.Count() != 1 {
		t.Errorf("disabled Observe recorded; count = %d, want 1", st.Count())
	}
}
