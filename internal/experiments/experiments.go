// Package experiments implements the reproduction of every table and figure
// of the paper's evaluation (Section 6). Each experiment returns a typed
// result plus a textual report comparing the paper's numbers with the
// measured ones; cmd/benchreport prints them and the root-level benchmarks
// regenerate them under `go test -bench`. The experiment index lives in
// DESIGN.md §4 (E1-E10).
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

// Env bundles the shared substrate of all experiments: schema, synthetic
// database, seeded statistics, and a generated log.
type Env struct {
	Scale   int // number of log queries
	Seed    int64
	Schema  *schema.Schema
	DB      *memdb.DB
	Stats   *schema.Stats
	Entries []skyserver.LogEntry
	Records []qlog.Record
}

// NewEnv builds the shared substrate. scale <= 0 defaults to 20000 queries.
func NewEnv(scale int, seed int64) *Env {
	return NewEnvRows(scale, seed, 2000)
}

// NewEnvRows is NewEnv with an explicit database size (the re-query
// baseline's cost scales with rows², so its benchmark uses a smaller DB).
func NewEnvRows(scale int, seed int64, rows int) *Env {
	if scale <= 0 {
		scale = 20000
	}
	if rows <= 0 {
		rows = 2000
	}
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: rows, Seed: seed})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: scale, Seed: seed})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return &Env{
		Scale: scale, Seed: seed,
		Schema: skyserver.Schema(), DB: db, Stats: stats,
		Entries: entries, Records: recs,
	}
}

// Miner returns a Miner wired to the env's schema and stats.
func (e *Env) Miner() *core.Miner {
	return core.NewMiner(core.Config{Schema: e.Schema, Stats: e.Stats, Seed: e.Seed})
}

// paperRow is one ground-truth Table-1 row for the comparison report.
type paperRow struct {
	id       int
	card     int
	area     float64
	object   float64
	relation string
	column   string // "" for the categorical cluster 10
	window   interval.Interval
	empty    bool
}

func paperTable1() []paperRow {
	iv := interval.Closed
	inf := math.Inf(1)
	return []paperRow{
		{1, 179072, 0.24, 0.36, "Photoz", "Photoz.objid", iv(1.237657855534432934e18, 1.237666210342830434e18), false},
		{2, 121311, 0.19, 0.22, "SpecObjAll", "SpecObjAll.specobjid", iv(1.115887524498139136e18, 2.183177975464224768e18), false},
		{3, 92177, 0.22, 0.21, "galSpecLine", "galSpecLine.specobjid", iv(1.345591721622267904e18, 2.007633797213874176e18), false},
		{4, 90047, 0.25, 0.25, "galSpecInfo", "galSpecInfo.specobjid", iv(1.4161923255970304e18, 2.183213984470034432e18), false},
		{5, 90015, 0.19, 0.25, "PhotoObjAll", "PhotoObjAll.ra", iv(math.Inf(-1), 210), false},
		{6, 82196, 0.23, 0.24, "sppLines", "sppLines.specobjid", iv(1.228357946564438016e18, 2.069493422263134208e18), false},
		{7, 23021, 0.17, 0.04, "SpecObjAll", "SpecObjAll.ra", iv(54, 115), false},
		{8, 23021, 0.23, 0.09, "SpecPhotoAll", "SpecPhotoAll.ra", iv(60, 124), false},
		{9, 18904, 0.03, 0.01, "SpecObjAll", "SpecObjAll.mjd", iv(51578, 52178), false},
		{10, 10141, 0.26, 0.27, "DBObjects", "", interval.Interval{}, false},
		{11, 4006, 0.24, 0.18, "emissionLinesPort", "emissionLinesPort.ra", iv(55, 141), false},
		{12, 3785, 0.21, 0.17, "stellarMassPCAWisc", "stellarMassPCAWisc.ra", iv(62, 138), false},
		{13, 1622, 0.12, 0.11, "AtlasOutline", "AtlasOutline.objid", iv(1.237676243900255188e18, inf), false},
		{14, 1371, 0.16, 0.01, "zooSpec", "zooSpec.dec", iv(30, 70), false},
		{15, 1141, 0.10, 0.05, "Photoz", "Photoz.z", iv(0, 0.1), false},
		{16, 1102, 0.25, 0.17, "galSpecExtra", "galSpecExtra.bptclass", iv(0, 3), false},
		{17, 1035, 0.001, 0.001, "sppParams", "sppParams.fehadop", iv(-0.3, 0.5), false},
		{18, 48470, 0, 0, "PhotoObjAll", "PhotoObjAll.dec", iv(-90, -50), true},
		{19, 41599, 0, 0, "galSpecLine", "galSpecLine.specobjid", iv(3.519644828126257152e18, 5.788299621113984e18), true},
		{20, 18444, 0, 0, "galSpecInfo", "galSpecInfo.specobjid", iv(3.519644828126257152e18, 5.788299621113984e18), true},
		{21, 18043, 0, 0, "sppLines", "sppLines.specobjid", iv(4.037480726273651712e18, 5.788299621113984e18), true},
		{22, 1358, 0, 0, "zooSpec", "zooSpec.dec", iv(-100, -15), true},
		{23, 422, 0, 0, "Photoz", "Photoz.z", iv(-0.98, -0.1), true},
		{24, 217, 0, 0, "Photoz", "Photoz.z", iv(3.0, 6.5), true},
	}
}

// matchCluster finds the mined cluster matching a paper row.
func matchCluster(res *core.Result, row paperRow) *aggregate.Summary {
	for _, c := range res.Clusters {
		hasRel := false
		for _, r := range c.Relations {
			if r == row.relation {
				hasRel = true
			}
		}
		if !hasRel {
			continue
		}
		if row.column == "" {
			if len(c.Categorical) > 0 {
				return c
			}
			continue
		}
		if !c.Box.Has(row.column) {
			continue
		}
		got := c.Box.Get(row.column)
		if endpointClose(got.Lo, row.window.Lo, row.window) && endpointClose(got.Hi, row.window.Hi, row.window) {
			return c
		}
	}
	return nil
}

func endpointClose(got, want float64, window interval.Interval) bool {
	if math.IsInf(want, 0) {
		return math.IsInf(got, 0) && math.Signbit(got) == math.Signbit(want)
	}
	if math.IsInf(got, 0) {
		return false
	}
	tol := 0.67 * window.Width()
	if math.IsInf(tol, 1) {
		tol = 0.15 * math.Abs(want)
	}
	return math.Abs(got-want) <= tol
}

// Table1Result is E1's outcome.
type Table1Result struct {
	Result    *core.Result
	Matched   int // how many of the 24 paper clusters were recovered
	TotalRows int
	Report    string
}

// RunTable1 executes E1: mine the synthetic log and compare every Table-1
// row (cardinality rank, area coverage, object coverage, access area) with
// the mined clusters.
func (e *Env) RunTable1() *Table1Result {
	miner := e.Miner()
	res := miner.MineRecords(e.Records)
	res.AttachCoverage(e.DB)

	var b strings.Builder
	fmt.Fprintf(&b, "E1 / Table 1 — aggregated access areas (scale %d queries, paper: 12.4M)\n", e.Scale)
	fmt.Fprintf(&b, "extraction coverage: %.2f%% (paper: 99.46%%); clusters found: %d (paper: 403 total, 24 reported)\n\n",
		100*res.PipelineStats.Coverage(), len(res.Clusters))
	fmt.Fprintf(&b, "%-4s %-28s %-28s %-28s %s\n", "row", "cardinality paper/ours", "area cov paper/ours", "obj cov paper/ours", "access area (ours)")

	matched := 0
	rows := paperTable1()
	totalPaper := 0
	for _, row := range rows {
		totalPaper += row.card
	}
	totalOurs := 0
	for _, e := range e.Entries {
		if strings.HasPrefix(e.Template, "cluster") {
			totalOurs++
		}
	}
	for _, row := range rows {
		c := matchCluster(res, row)
		if c == nil {
			fmt.Fprintf(&b, "%-4d %-28s NOT RECOVERED\n", row.id,
				fmt.Sprintf("%d/-", row.card))
			continue
		}
		matched++
		paperShare := float64(row.card) / float64(totalPaper)
		ourShare := float64(c.Cardinality) / float64(totalOurs)
		areaPaper := fmt.Sprintf("%.2f", row.area)
		if row.id == 17 {
			areaPaper = "<0.001"
		}
		fmt.Fprintf(&b, "%-4d %-28s %-28s %-28s %s\n",
			row.id,
			fmt.Sprintf("%d (%.1f%%) / %d (%.1f%%)", row.card, 100*paperShare, c.Cardinality, 100*ourShare),
			fmt.Sprintf("%s / %.3f", areaPaper, c.AreaCoverage),
			fmt.Sprintf("%.2f / %.3f", row.object, c.ObjectCoverage),
			truncate(c.Expr(), 90))
	}
	fmt.Fprintf(&b, "\nrecovered %d/24 paper clusters; noise queries: %d; distinct areas: %d\n",
		matched, res.NoiseQueries, res.DistinctAreas)
	return &Table1Result{Result: res, Matched: matched, TotalRows: len(rows), Report: b.String()}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// FigureResult is the outcome of a Figure-1 reproduction: the content box
// of the plotted subspace and the access boxes of the clusters the figure
// shows. Since the harness is text-based, the "figure" is the box series a
// plot would draw.
type FigureResult struct {
	Name       string
	XCol, YCol string
	Content    *interval.Box
	Access     []*interval.Box
	Report     string
}

// RunFigure1 executes E2-E4 for which ∈ {'a', 'b', 'c'}.
func (e *Env) RunFigure1(which byte) *FigureResult {
	type spec struct {
		name, xcol, ycol string
		rows             []int // paper cluster ids plotted
		caption          string
	}
	var sp spec
	switch which {
	case 'a':
		sp = spec{"Figure 1(a)", "SpecObjAll.plate", "SpecObjAll.mjd", []int{9},
			"access area is a small part of the content (Example 1)"}
	case 'b':
		sp = spec{"Figure 1(b)", "PhotoObjAll.ra", "PhotoObjAll.dec", []int{5, 18},
			"queries span content plus the empty dec < -25 region"}
	default:
		sp = spec{"Figure 1(c)", "zooSpec.ra", "zooSpec.dec", []int{14, 22},
			"non-contiguous empty areas larger than the content"}
	}
	miner := e.Miner()
	res := miner.MineRecords(e.Records)

	content := interval.NewBox()
	for _, col := range []string{sp.xcol, sp.ycol} {
		if iv, ok := e.DB.ContentInterval(col); ok {
			content.Set(col, iv)
		}
	}
	out := &FigureResult{Name: sp.name, XCol: sp.xcol, YCol: sp.ycol, Content: content}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s × %s (%s)\n", sp.name, sp.xcol, sp.ycol, sp.caption)
	fmt.Fprintf(&b, "content box: %s\n", content)
	rows := paperTable1()
	for _, id := range sp.rows {
		row := rows[id-1]
		c := matchCluster(res, row)
		if c == nil {
			fmt.Fprintf(&b, "cluster %d: NOT RECOVERED\n", id)
			continue
		}
		box := interval.NewBox()
		for _, col := range []string{sp.xcol, sp.ycol} {
			if c.Box.Has(col) {
				box.Set(col, c.Box.Get(col))
			}
		}
		out.Access = append(out.Access, box)
		rel := "inside content"
		if row.empty {
			rel = "in the EMPTY area"
		}
		fmt.Fprintf(&b, "cluster %d access box (%d queries, %s): %s\n", id, c.Cardinality, rel, box)
	}
	b.WriteString("\n")
	b.WriteString(out.RenderASCII(e.DB, 76, 22))
	out.Report = b.String()
	return out
}

// CoverageResult is E5's outcome.
type CoverageResult struct {
	Stats  *qlog.Stats
	Report string
}

// RunCoverage executes E5: the Section 6.1 extraction-coverage statistics.
func (e *Env) RunCoverage() *CoverageResult {
	miner := e.Miner()
	res := miner.MineRecords(e.Records)
	st := res.PipelineStats
	var b strings.Builder
	fmt.Fprintf(&b, "E5 / §6.1 extraction coverage (scale %d)\n", e.Scale)
	fmt.Fprintf(&b, "paper: 12,375,426 of 12,442,989 extracted = 99.46%%\n")
	fmt.Fprintf(&b, "ours:  %d of %d extracted = %.2f%%\n", st.Extracted, st.Total, 100*st.Coverage())
	var kinds []string
	for k := range st.ParseFailures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  rejected (%s): %d\n", k, st.ParseFailures[k])
	}
	fmt.Fprintf(&b, "  extraction failures (self-joins etc.): %d\n", st.ExtractFailures)
	fmt.Fprintf(&b, "  truncated at %d-predicate cap: %d (paper: 471 of 12.4M)\n", 35, st.Truncated)
	return &CoverageResult{Stats: st, Report: b.String()}
}
