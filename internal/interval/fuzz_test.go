package interval

import (
	"math"
	"testing"
)

// fuzzInterval builds an interval from raw fuzz inputs. NaN endpoints are
// normalised away, and infinite endpoints are forced open — the only form
// the package itself ever constructs (Full/Below/Above), and the only one
// with coherent complement semantics over the reals.
func fuzzInterval(lo, hi float64, flags byte) Interval {
	if math.IsNaN(lo) {
		lo = 0
	}
	if math.IsNaN(hi) {
		hi = 0
	}
	iv := Interval{Lo: lo, Hi: hi, LoOpen: flags&1 != 0, HiOpen: flags&2 != 0}
	if math.IsInf(iv.Lo, 0) {
		iv.LoOpen = true
	}
	if math.IsInf(iv.Hi, 0) {
		iv.HiOpen = true
	}
	return iv
}

// checkCanonical asserts the Set invariant: sorted, non-empty, pairwise
// disjoint and non-adjacent constituents.
func checkCanonical(t *testing.T, label string, s Set) {
	t.Helper()
	ivs := s.Intervals()
	for i, iv := range ivs {
		if iv.IsEmpty() {
			t.Fatalf("%s: member %d empty: %v", label, i, s)
		}
		if i == 0 {
			continue
		}
		prev := ivs[i-1]
		if prev.Overlaps(iv) || prev.Adjacent(iv) {
			t.Fatalf("%s: members %d,%d overlap/adjacent: %v", label, i-1, i, s)
		}
		if iv.Lo < prev.Lo {
			t.Fatalf("%s: members out of order: %v", label, s)
		}
	}
}

// FuzzIntervalSet drives the interval-set algebra the semantic cache's
// containment rule leans on: union/intersect/complement identities, endpoint
// openness edge cases, and consistency between set operations and point
// membership plus ContainsInterval.
func FuzzIntervalSet(f *testing.F) {
	f.Add(0.0, 1.0, byte(0), 0.5, 2.0, byte(1), 1.0, 1.0, byte(2))
	f.Add(math.Inf(-1), 3.0, byte(2), 3.0, math.Inf(1), byte(0), -1.0, 5.0, byte(3))
	f.Add(5.0, 5.0, byte(0), 5.0, 5.0, byte(1), 4.0, 6.0, byte(0))
	f.Add(1.0, 0.0, byte(0), 0.0, 0.0, byte(3), math.Inf(-1), math.Inf(1), byte(3))
	f.Add(-2.5, 7.25, byte(1), 7.25, 9.0, byte(0), 2.0, 2.0, byte(0))

	f.Fuzz(func(t *testing.T, lo1, hi1 float64, f1 byte, lo2, hi2 float64, f2 byte, lo3, hi3 float64, f3 byte) {
		a := fuzzInterval(lo1, hi1, f1)
		b := fuzzInterval(lo2, hi2, f2)
		c := fuzzInterval(lo3, hi3, f3)

		sa, sb := NewSet(a, c), NewSet(b)
		checkCanonical(t, "a", sa)
		checkCanonical(t, "b", sb)

		union := sa.Union(sb)
		inter := sa.Intersect(sb)
		checkCanonical(t, "union", union)
		checkCanonical(t, "inter", inter)

		if !union.Equal(sb.Union(sa)) {
			t.Fatalf("union not commutative: %v vs %v", sa, sb)
		}
		if !inter.Equal(sb.Intersect(sa)) {
			t.Fatalf("intersect not commutative: %v vs %v", sa, sb)
		}
		if !sa.Complement().Complement().Equal(sa) {
			t.Fatalf("complement not involutive: %v -> %v -> %v",
				sa, sa.Complement(), sa.Complement().Complement())
		}
		if !union.Complement().Equal(sa.Complement().Intersect(sb.Complement())) {
			t.Fatalf("De Morgan violated for %v, %v", sa, sb)
		}

		// Point membership must agree with the set operations at endpoints
		// (where openness matters) and in between.
		probes := []float64{lo1, hi1, lo2, hi2, lo3, hi3}
		for _, v := range []float64{lo1, hi1, lo2, hi2} {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				probes = append(probes, v-0.5, v+0.5, math.Nextafter(v, math.Inf(1)), math.Nextafter(v, math.Inf(-1)))
			}
		}
		for _, v := range probes {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			inA, inB := sa.Contains(v), sb.Contains(v)
			if got := union.Contains(v); got != (inA || inB) {
				t.Fatalf("union membership of %v: got %v, want %v (%v ∪ %v)", v, got, inA || inB, sa, sb)
			}
			if got := inter.Contains(v); got != (inA && inB) {
				t.Fatalf("intersect membership of %v: got %v, want %v (%v ∩ %v)", v, got, inA && inB, sa, sb)
			}
			if got := sa.Complement().Contains(v); got == inA {
				t.Fatalf("complement membership of %v equals set membership (%v)", v, sa)
			}
			if sa.Hull().Contains(v) != sa.Hull().Contains(v) { // hull is an interval; sanity only
				t.Fatalf("hull inconsistent")
			}
			if inA && !sa.Hull().Contains(v) {
				t.Fatalf("hull of %v misses member point %v", sa, v)
			}
		}

		// ContainsInterval must agree with the set algebra: a ⊇ b exactly
		// when adding b to a changes nothing.
		if got, want := a.ContainsInterval(b), NewSet(a).Union(NewSet(b)).Equal(NewSet(a)); got != want {
			t.Fatalf("ContainsInterval(%v, %v) = %v, union test says %v", a, b, got, want)
		}
	})
}
