package core

import (
	"sync"

	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/schema"
)

// Substrate is the distance infrastructure a family of Incremental miners
// shares: access-area profiles interned by area key into one flat SoA
// kernel, and one cross-miner DynamicPairCache over the interned slots. The
// traffic-class miners cluster largely overlapping area populations (a bot
// area and a human area with the same CNF are the same point), so routing
// them through one substrate makes every cross-class repeat a cache hit:
// the pair is evaluated once, by whichever miner reaches it first.
//
// Sharing cannot perturb results: the kernel's distances depend only on the
// profile pair and the access(a) registry generation, so a cached value is
// bit-identical to what a private kernel would have computed.
//
// Interning is locked; the cache is safe for the concurrent region queries
// DBSCAN issues. Miners sharing a substrate must not RUN their recluster
// epochs concurrently with each other (the serving layer's epoch loop is
// sequential), because a registry-generation reset by one miner drops slots
// another mid-epoch miner would still be reading.
type Substrate struct {
	mode  distance.Mode
	stats *schema.Stats

	mu     sync.Mutex
	ready  bool
	gen    uint64
	metric *distance.Metric
	byKey  map[string]int
	kern   *distance.Kernel
	cache  *distance.DynamicPairCache
}

// Substrate builds an empty shared substrate bound to this Miner's distance
// mode and access(a) registry. Hand it to IncrementalShared on every miner
// that should share distance work.
func (m *Miner) Substrate() *Substrate {
	return &Substrate{mode: m.cfg.Mode, stats: m.stats}
}

// ensure revalidates the shared structures against the registry generation,
// dropping everything when it moved (profiles read schema.Stats, and
// extraction grows it — exactly the Incremental invalidation rule).
func (s *Substrate) ensure(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ready && s.gen == gen {
		return
	}
	s.ready = true
	s.gen = gen
	s.metric = &distance.Metric{Mode: s.mode, Stats: s.stats}
	s.byKey = make(map[string]int)
	s.kern = distance.NewKernel(s.mode)
	s.cache = distance.NewDynamicPairCache(s.kern.Distance)
}

// slotFor interns one access area, compiling its profile on first sight,
// and returns its kernel slot. Identical areas — same Key() — map to the
// same slot from every sharing miner.
func (s *Substrate) slotFor(a *extract.AccessArea) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := a.Key()
	if idx, ok := s.byKey[key]; ok {
		return idx
	}
	idx := s.kern.Add(s.metric.Profile(a))
	s.byKey[key] = idx
	return idx
}

// Slots reports how many distinct areas are interned.
func (s *Substrate) Slots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byKey)
}

// Evals returns the substrate-lifetime distance evaluations (cache misses)
// across every sharing miner.
func (s *Substrate) Evals() int64 {
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Evals()
}

// Hits returns the lookups the shared cache served from memory.
func (s *Substrate) Hits() int64 {
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Hits()
}

// pairSource is what the clustering stages need from a distance cache. Both
// the private DynamicPairCache and the substrate view satisfy it.
type pairSource interface {
	Dist(i, j int) float64
	Evals() int64
	Hits() int64
}

// subView adapts the shared substrate to one miner's local item index
// space: local index i clusters as interned slot slots[i].
type subView struct {
	sub   *Substrate
	slots []int
}

func (v *subView) Dist(i, j int) float64 { return v.sub.cache.Dist(v.slots[i], v.slots[j]) }
func (v *subView) Evals() int64          { return v.sub.Evals() }
func (v *subView) Hits() int64           { return v.sub.Hits() }
