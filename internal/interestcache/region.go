// Package interestcache is the semantic result cache the paper's access-area
// mining motivates: mined clusters describe where in the data space users are
// interested, so the rows inside each cluster's aggregated access area are
// prefetched into per-region column stores and queries whose own access area
// is contained in a cached region are answered from the region's store
// instead of the full database (DESIGN.md §11).
package interestcache

import (
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/predicate"
)

// Region is one prefetched cluster: the aggregated access area (relations,
// hyper-rectangle, categorical value lists) plus a sealed sub-database
// holding exactly the rows of the source database inside the area. The store
// is immutable after construction; hit counters are atomic so the serving
// path never takes a lock.
type Region struct {
	ID          int
	Generation  int64
	Relations   []string
	Box         *interval.Box
	Categorical map[string][]string

	store *memdb.DB
	// rowIdx maps each store table (lowercased canonical name) to the sorted
	// source-row positions of its rows, so composed covers can merge two
	// region stores back into global source order (compose.go).
	rowIdx map[string][]int
	// Rows and Bytes size the prefetched column store: total row count and
	// the byte footprint of its cells (8 bytes per number, len+1 per
	// string, 1 per null — the kind tag).
	Rows  int
	Bytes int64

	// identity is the canonical signature of the cluster's access area
	// (relations + box + categorical). The heat book is keyed by identity so
	// heat survives epoch re-mining: the same interest area gets new cluster
	// IDs each epoch but the same identity.
	identity string
	// materializedAt stamps when the store was built; with a per-region TTL
	// configured, stores younger than the TTL are carried into the next
	// generation instead of being rebuilt, and the age is surfaced as the
	// hit's staleness bound.
	materializedAt time.Time
	// shadow regions keep the area metadata with no store: they exist only
	// to collect near-miss heat for regions the budget excluded.
	shadow bool

	hits        atomic.Int64
	bytesServed atomic.Int64
	nearMisses  atomic.Int64

	books bookCache
}

// queryShape is a query's access area projected into the containment test's
// vocabulary: referenced relations, per-column numeric bound sets, and
// per-column pinned string values. Computing it once per query lets region
// containment, index lookup, cover search, and shadow near-miss crediting
// share the work.
type queryShape struct {
	relations []string
	bounds    map[string]interval.Set
	strs      map[string][]string
}

func newQueryShape(area *extract.AccessArea) *queryShape {
	return &queryShape{
		relations: area.Relations,
		bounds:    area.Bounds(),
		strs:      predicate.StringBounds(area.CNF),
	}
}

// hull is the query's projected bound on one dimension: the hull of its
// interval set, or the full line when the column is unconstrained.
func (s *queryShape) hull(dim string) interval.Interval {
	if set, ok := s.bounds[dim]; ok {
		return set.Hull()
	}
	return interval.Full()
}

// newRegion prefetches the rows of db inside the cluster's aggregated access
// area into a per-region column store. The restricted view is re-materialised
// column by column into fresh row slices so the region store stays valid even
// if the source tables are later mutated.
func newRegion(db *memdb.DB, generation int64, c *aggregate.Summary) *Region {
	r := newShadowRegion(generation, c)
	r.shadow = false
	view, rowIdx := db.RestrictIndexed(r.Relations, r.Box, r.Categorical)
	r.rowIdx = rowIdx
	r.store = memdb.New(db.Schema)
	for _, name := range view.Tables() {
		src := view.Table(name)
		cols := columnize(src)
		dst := r.store.CreateTable(src.Name, src.Columns...)
		dst.Rows = cols.rows()
		r.Rows += len(dst.Rows)
		r.Bytes += cols.bytes
	}
	r.materializedAt = time.Now()
	return r
}

// newShadowRegion carries a cluster's area metadata without materialising a
// store. Shadows sit outside the containment index; the miss path scans them
// to credit near-miss heat to regions the budget excluded, which is what lets
// a wrongly-evicted region earn its way back in.
func newShadowRegion(generation int64, c *aggregate.Summary) *Region {
	return &Region{
		ID:          c.ID,
		Generation:  generation,
		Relations:   append([]string(nil), c.Relations...),
		Box:         c.Box.Clone(),
		Categorical: c.Categorical,
		identity:    identityOf(c.Relations, c.Box, c.Categorical),
		shadow:      true,
	}
}

// carryRegion re-wraps a prior generation's region under a new generation,
// sharing the immutable store, row index, and pre-aggregate books but with
// fresh serving counters (the old counters have already been folded into the
// heat book by Install).
func carryRegion(prev *Region, id int, generation int64) *Region {
	return &Region{
		ID:             id,
		Generation:     generation,
		Relations:      prev.Relations,
		Box:            prev.Box,
		Categorical:    prev.Categorical,
		store:          prev.store,
		rowIdx:         prev.rowIdx,
		Rows:           prev.Rows,
		Bytes:          prev.Bytes,
		identity:       prev.identity,
		materializedAt: prev.materializedAt,
		books:          bookCache{byKey: prev.books.snapshot()},
	}
}

// identityOf canonicalises a cluster's access area into a signature string:
// lowercased sorted relations, each box dimension with exact (bit-preserving)
// endpoints and openness, and each categorical column with its sorted folded
// value list. Two epochs that mine the same interest area produce the same
// identity even though cluster IDs differ.
func identityOf(relations []string, box *interval.Box, categorical map[string][]string) string {
	var b strings.Builder
	rels := make([]string, len(relations))
	for i, r := range relations {
		rels[i] = strings.ToLower(r)
	}
	sort.Strings(rels)
	b.WriteString(strings.Join(rels, ","))
	if box != nil {
		dims := box.Dims()
		sort.Strings(dims)
		for _, d := range dims {
			iv := box.Get(d)
			b.WriteString("|")
			b.WriteString(strings.ToLower(d))
			b.WriteString(boundMark(iv.LoOpen, "("))
			b.WriteString(strconv.FormatFloat(iv.Lo, 'x', -1, 64))
			b.WriteString(",")
			b.WriteString(strconv.FormatFloat(iv.Hi, 'x', -1, 64))
			b.WriteString(boundMark(iv.HiOpen, ")"))
		}
	}
	if len(categorical) > 0 {
		cols := make([]string, 0, len(categorical))
		for c := range categorical {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			vals := make([]string, len(categorical[c]))
			for i, v := range categorical[c] {
				vals[i] = strings.ToLower(v)
			}
			sort.Strings(vals)
			b.WriteString("|")
			b.WriteString(strings.ToLower(c))
			b.WriteString("=")
			b.WriteString(strings.Join(vals, ","))
		}
	}
	return b.String()
}

func boundMark(open bool, openMark string) string {
	if open {
		return openMark
	}
	if openMark == "(" {
		return "["
	}
	return "]"
}

// columns is a per-table column store: one typed vector per column, cells
// addressed row-major on read-out. It exists to own the region's copy of the
// data (decoupled from the source DB) and to account bytes per cell.
type columns struct {
	kinds [][]memdb.ValueKind
	nums  [][]float64
	strs  [][]string
	n     int
	bytes int64
}

func columnize(t *memdb.Table) *columns {
	c := &columns{
		kinds: make([][]memdb.ValueKind, len(t.Columns)),
		nums:  make([][]float64, len(t.Columns)),
		strs:  make([][]string, len(t.Columns)),
		n:     len(t.Rows),
	}
	for i := range t.Columns {
		c.kinds[i] = make([]memdb.ValueKind, len(t.Rows))
		c.nums[i] = make([]float64, len(t.Rows))
		c.strs[i] = make([]string, len(t.Rows))
	}
	for ri, row := range t.Rows {
		for ci, v := range row {
			c.kinds[ci][ri] = v.Kind
			c.bytes++ // kind tag
			switch v.Kind {
			case memdb.Num:
				c.nums[ci][ri] = v.Num
				c.bytes += 8
			case memdb.Str:
				c.strs[ci][ri] = v.Str
				c.bytes += int64(len(v.Str))
			}
		}
	}
	return c
}

// rows seals the column store back into row form for the executor,
// preserving the source row order (the property that makes TOP/ORDER
// BY-free enumeration from a region a subsequence of direct enumeration).
func (c *columns) rows() [][]memdb.Value {
	out := make([][]memdb.Value, c.n)
	for ri := range out {
		row := make([]memdb.Value, len(c.kinds))
		for ci := range c.kinds {
			switch c.kinds[ci][ri] {
			case memdb.Num:
				row[ci] = memdb.N(c.nums[ci][ri])
			case memdb.Str:
				row[ci] = memdb.S(c.strs[ci][ri])
			default:
				row[ci] = memdb.NullValue()
			}
		}
		out[ri] = row
	}
	return out
}

// Contains reports whether every row the query's access area can touch is
// present in the region's store, i.e. whether the query may be answered from
// the region. The rule (DESIGN.md §11):
//
//  1. every query relation is one of the region's relations;
//  2. for each box dimension the region constrains on a relation the query
//     references, the hull of the query's projected bounds (the full
//     interval when the query leaves the column unconstrained) is contained
//     in the region's interval;
//  3. for each categorical column the region pins on a referenced relation,
//     the query must pin the column to a subset of the region's values
//     (case-insensitively, mirroring evaluation).
//
// Dimensions on relations the query never reads are irrelevant: the
// restriction they induce removes rows of other tables only.
func (r *Region) Contains(area *extract.AccessArea) bool {
	return r.containsShape(newQueryShape(area), "", "")
}

// containsShape is the containment test proper, shared by Contains, the
// index lookup, and the cover search. skipDim (a box dimension) and skipCat
// (a categorical column) name the one axis a composed cover is allowed to
// split along: the test ignores that axis, certifying the region contains
// the query on every OTHER axis, and the cover search separately proves the
// skipped axis is covered by the union of the set's projections.
func (r *Region) containsShape(s *queryShape, skipDim, skipCat string) bool {
	for _, rel := range s.relations {
		if !containsFold(r.Relations, rel) {
			return false
		}
	}
	for _, dim := range r.Box.Dims() {
		if dim == skipDim {
			continue
		}
		rel, _, ok := splitQualified(dim)
		if !ok || !containsFold(s.relations, rel) {
			continue
		}
		if !r.Box.Get(dim).ContainsInterval(s.hull(dim)) {
			return false
		}
	}
	for col, regionVals := range r.Categorical {
		if col == skipCat {
			continue
		}
		rel, _, ok := splitQualified(col)
		if !ok || !containsFold(s.relations, rel) {
			continue
		}
		queryVals, ok := s.strs[col]
		if !ok {
			return false
		}
		for _, v := range queryVals {
			if !containsFold(regionVals, v) {
				return false
			}
		}
	}
	return true
}

// Staleness is the age of the region's materialised store.
func (r *Region) Staleness() time.Duration {
	if r.materializedAt.IsZero() {
		return 0
	}
	return time.Since(r.materializedAt)
}

// Hits, BytesServed, and NearMisses expose the per-region serving counters.
// NearMisses counts queries this region would have contained but could not
// serve (shadow regions, or resident regions a composed cover passed over);
// it feeds the heat book alongside hits.
func (r *Region) Hits() int64        { return r.hits.Load() }
func (r *Region) BytesServed() int64 { return r.bytesServed.Load() }
func (r *Region) NearMisses() int64  { return r.nearMisses.Load() }

func containsFold(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}

func splitQualified(name string) (rel, col string, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}
