package traffic

import (
	"math"
	"sort"
	"strings"
)

// Config tunes the classifier. The zero value gets serviceable defaults
// from withDefaults; the serving layer treats a nil *Config as "traffic
// mining disabled".
type Config struct {
	// Overrides pins users to a class regardless of behaviour — the
	// operator's allowlist for known crawlers and admin accounts.
	Overrides map[string]string

	// SessionGap is the inactivity timeout (logical seconds) that ends a
	// session; gap statistics reset at session boundaries so regularity is
	// a within-session feature. Default 1800 ([23]'s 30 minutes).
	SessionGap int64
	// MinQueries is how many queries of the current session a user must
	// have issued before the bot heuristics may fire. Default 16.
	MinQueries int
	// BotMaxMeanGap is the largest mean inter-query gap (seconds) the bot
	// heuristic accepts — machines poll fast. Default 5.
	BotMaxMeanGap float64
	// BotMaxGapStddev bounds the gap standard deviation: machine cadence
	// is regular, human bursts are not. Default 2.
	BotMaxGapStddev float64
	// BotMaxDiversity bounds distinct-fingerprints / queries: bots replay
	// a handful of form templates. Default 0.25.
	BotMaxDiversity float64
	// MaxUsers bounds the tracked-user table; users past the bound are
	// classified statelessly (admin statements still detected). Default 65536.
	MaxUsers int
	// MaxFingerprints bounds the per-user distinct-fingerprint set used for
	// the diversity feature. Default 512.
	MaxFingerprints int

	// DriftMaxEvents bounds the retained drift-event log. Default 4096.
	DriftMaxEvents int
	// InterfaceMaxFPs bounds how many distinct fingerprints the interface
	// miner tracks. Default 2048.
	InterfaceMaxFPs int
	// InterfaceMaxSamples bounds the observed-value samples kept per slot.
	// Default 8.
	InterfaceMaxSamples int
}

func (c Config) withDefaults() Config {
	if c.SessionGap <= 0 {
		c.SessionGap = 1800
	}
	if c.MinQueries <= 0 {
		c.MinQueries = 16
	}
	if c.BotMaxMeanGap <= 0 {
		c.BotMaxMeanGap = 5
	}
	if c.BotMaxGapStddev <= 0 {
		c.BotMaxGapStddev = 2
	}
	if c.BotMaxDiversity <= 0 {
		c.BotMaxDiversity = 0.25
	}
	if c.MaxUsers <= 0 {
		c.MaxUsers = 1 << 16
	}
	if c.MaxFingerprints <= 0 {
		c.MaxFingerprints = 512
	}
	if c.DriftMaxEvents <= 0 {
		c.DriftMaxEvents = 4096
	}
	if c.InterfaceMaxFPs <= 0 {
		c.InterfaceMaxFPs = 2048
	}
	if c.InterfaceMaxSamples <= 0 {
		c.InterfaceMaxSamples = 8
	}
	return c
}

// userState is the classifier's per-user accumulator. Gap mean/variance use
// Welford's online recurrence over the inter-arrival gaps of the current
// session.
type userState struct {
	queries        int
	sessionQueries int
	lastTime       int64
	gapCount       int
	gapMean        float64
	gapM2          float64
	fps            map[uint64]struct{}
	admin          bool
}

// stddev returns the sample standard deviation of the session's gaps.
func (u *userState) stddev() float64 {
	if u.gapCount < 2 {
		return 0
	}
	return math.Sqrt(u.gapM2 / float64(u.gapCount-1))
}

// Classifier assigns traffic classes online, one record at a time. It is
// NOT internally locked: callers (the serve admission path, the shard
// coordinator's enqueue) already serialise admission, and the class of a
// record must be a pure function of the admission order for the per-class
// reports to be reproducible.
type Classifier struct {
	cfg    Config
	users  map[string]*userState
	counts map[string]int64 // records admitted per class
}

// NewClassifier builds a classifier. cfg is taken by value; defaults are
// applied.
func NewClassifier(cfg Config) *Classifier {
	return &Classifier{
		cfg:    cfg.withDefaults(),
		users:  make(map[string]*userState),
		counts: make(map[string]int64),
	}
}

// adminKeywords are the statement-initial keywords that mark administrative
// traffic: DDL, privilege management, batch variables and data mutation —
// none of which the SELECT-mining pipeline extracts areas from.
var adminKeywords = map[string]bool{
	"CREATE": true, "DROP": true, "ALTER": true, "TRUNCATE": true,
	"GRANT": true, "REVOKE": true, "DECLARE": true, "EXEC": true,
	"EXECUTE": true, "INSERT": true, "UPDATE": true, "DELETE": true,
}

// isAdminSQL reports whether the statement's first keyword is
// administrative.
func isAdminSQL(sql string) bool {
	i := 0
	for i < len(sql) && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r') {
		i++
	}
	j := i
	for j < len(sql) {
		c := sql[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			break
		}
		j++
	}
	if j == i {
		return false
	}
	return adminKeywords[strings.ToUpper(sql[i:j])]
}

// Observe folds one admitted record into the per-user state and returns its
// class. fp is the record's statement fingerprint (0 when the statement
// does not lex — it still counts as one more non-diverse query). The
// decision order is: override list, sticky admin detection, bot heuristics,
// default human.
func (c *Classifier) Observe(user string, t int64, fp uint64, sql string) string {
	if cls, ok := c.cfg.Overrides[user]; ok && ValidClass(cls) {
		c.counts[cls]++
		return cls
	}
	st, ok := c.users[user]
	if !ok {
		if len(c.users) >= c.cfg.MaxUsers {
			// Past the user bound: stateless fallback. Admin statements are
			// still recognisable without history.
			cls := Human
			if isAdminSQL(sql) {
				cls = Admin
			}
			c.counts[cls]++
			return cls
		}
		st = &userState{fps: make(map[uint64]struct{})}
		c.users[user] = st
	}
	if !st.admin && isAdminSQL(sql) {
		st.admin = true
	}
	if st.queries > 0 {
		gap := float64(t - st.lastTime)
		if gap < 0 {
			gap = 0
		}
		if int64(gap) > c.cfg.SessionGap {
			// New session: regularity is a within-session feature.
			st.sessionQueries = 0
			st.gapCount, st.gapMean, st.gapM2 = 0, 0, 0
		} else {
			st.gapCount++
			d := gap - st.gapMean
			st.gapMean += d / float64(st.gapCount)
			st.gapM2 += d * (gap - st.gapMean)
		}
	}
	st.queries++
	st.sessionQueries++
	st.lastTime = t
	if fp != 0 && len(st.fps) < c.cfg.MaxFingerprints {
		st.fps[fp] = struct{}{}
	}
	cls := c.decide(st)
	c.counts[cls]++
	return cls
}

// decide applies the class rules to the current state.
func (c *Classifier) decide(st *userState) string {
	if st.admin {
		return Admin
	}
	if st.sessionQueries >= c.cfg.MinQueries && st.gapCount >= c.cfg.MinQueries-1 {
		diversity := float64(len(st.fps)) / float64(st.queries)
		if st.gapMean <= c.cfg.BotMaxMeanGap &&
			st.stddev() <= c.cfg.BotMaxGapStddev &&
			diversity <= c.cfg.BotMaxDiversity {
			return Bot
		}
	}
	return Human
}

// FinalClass returns the class the user's full observed history resolves
// to — the per-user ground-truth comparison the perf harness measures
// precision/recall on. Unknown users default to human; overrides win.
func (c *Classifier) FinalClass(user string) string {
	if cls, ok := c.cfg.Overrides[user]; ok && ValidClass(cls) {
		return cls
	}
	st, ok := c.users[user]
	if !ok {
		return Human
	}
	return c.decide(st)
}

// UserClasses returns every tracked user's final class, sorted by user name.
func (c *Classifier) UserClasses() map[string]string {
	out := make(map[string]string, len(c.users))
	for u := range c.users {
		out[u] = c.FinalClass(u)
	}
	return out
}

// Counts returns how many records were admitted per class.
func (c *Classifier) Counts() map[string]int64 {
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}

// UserSnapshot is one user's serialised classifier state.
type UserSnapshot struct {
	User           string   `json:"user"`
	Queries        int      `json:"queries"`
	SessionQueries int      `json:"session_queries"`
	LastTime       int64    `json:"last_time"`
	GapCount       int      `json:"gap_count"`
	GapMean        float64  `json:"gap_mean"`
	GapM2          float64  `json:"gap_m2"`
	Fingerprints   []uint64 `json:"fingerprints,omitempty"`
	Admin          bool     `json:"admin,omitempty"`
}

// ClassifierState is the snapshot form of a Classifier (users sorted so the
// serialisation is deterministic).
type ClassifierState struct {
	Users  []UserSnapshot   `json:"users"`
	Counts map[string]int64 `json:"counts"`
}

// ExportState snapshots the classifier.
func (c *Classifier) ExportState() *ClassifierState {
	st := &ClassifierState{Counts: c.Counts()}
	names := make([]string, 0, len(c.users))
	for u := range c.users {
		names = append(names, u)
	}
	sort.Strings(names)
	for _, u := range names {
		s := c.users[u]
		us := UserSnapshot{
			User: u, Queries: s.queries, SessionQueries: s.sessionQueries,
			LastTime: s.lastTime, GapCount: s.gapCount,
			GapMean: s.gapMean, GapM2: s.gapM2, Admin: s.admin,
		}
		for fp := range s.fps {
			us.Fingerprints = append(us.Fingerprints, fp)
		}
		sort.Slice(us.Fingerprints, func(i, j int) bool { return us.Fingerprints[i] < us.Fingerprints[j] })
		st.Users = append(st.Users, us)
	}
	return st
}

// RestoreState replaces the classifier's state with a snapshot.
func (c *Classifier) RestoreState(st *ClassifierState) {
	c.users = make(map[string]*userState, len(st.Users))
	c.counts = make(map[string]int64, len(st.Counts))
	for k, v := range st.Counts {
		c.counts[k] = v
	}
	for _, us := range st.Users {
		s := &userState{
			queries: us.Queries, sessionQueries: us.SessionQueries,
			lastTime: us.LastTime, gapCount: us.GapCount,
			gapMean: us.GapMean, gapM2: us.GapM2, admin: us.Admin,
			fps: make(map[uint64]struct{}, len(us.Fingerprints)),
		}
		for _, fp := range us.Fingerprints {
			s.fps[fp] = struct{}{}
		}
		c.users[us.User] = s
	}
}
