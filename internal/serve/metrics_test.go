package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestMetricsProm checks /metrics?format=prom serves both registries —
// the server's per-instance metrics and the process Default registry's
// stage histograms — in valid exposition shape, while the JSON view keeps
// its legacy keys.
func TestMetricsProm(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db), QueryDB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	accepted := postNDJSON(t, ts.URL, synthRecords(200, 42)).Accepted
	s.Flush()

	code, hdr, body := get(t, ts.URL+"/metrics?format=prom", "")
	if code != 200 {
		t.Fatalf("prom status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE skyaccess_serve_ingest_accepted_total counter",
		fmt.Sprintf("skyaccess_serve_ingest_accepted_total %d", accepted),
		"# TYPE skyaccess_serve_epochs_total counter",
		"# TYPE skyaccess_stage_serve_epoch_seconds histogram",
		`skyaccess_stage_serve_epoch_seconds_bucket{le="+Inf"}`,
		"# TYPE skyaccess_semcache_hits_total counter",
		"# TYPE skyaccess_stage_sqlparser_parse_seconds histogram",
		"skyaccess_qlog_records_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q", want)
		}
	}

	// Exposition sanity: every non-comment line is "name[{labels}] value",
	// and no metric name is emitted by both registries (duplicate families
	// are invalid in one exposition).
	seenFamily := map[string]int{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			seenFamily[fam]++
			if seenFamily[fam] > 1 {
				t.Errorf("metric family %q emitted twice", fam)
			}
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	// Legacy JSON view unchanged: same endpoint, no format param.
	code, _, jsonBody := get(t, ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("json status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal(jsonBody, &m); err != nil {
		t.Fatalf("legacy metrics json: %v", err)
	}
	for _, key := range []string{
		"uptime_seconds", "ingest_accepted", "ingest_rejected", "ingest_processed",
		"ingest_rate_per_sec", "queue_depth", "queue_capacity", "distinct_areas",
		"epochs", "epoch_last_ms", "epoch_total_ms", "template_cache_hits",
		"template_full_parses", "template_hit_ratio", "distance_evals",
		"distance_cache_hits", "distance_cache_hit_ratio",
		"semcache_generation", "semcache_regions", "semcache_hits",
		"semcache_misses", "semcache_bytes_served", "semcache_hit_ratio",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("legacy metrics missing key %q", key)
		}
	}
	if m["ingest_accepted"].(float64) != float64(accepted) {
		t.Errorf("ingest_accepted = %v, want %d", m["ingest_accepted"], accepted)
	}

	// The JSON view and the prom view read the same counters.
	if !strings.Contains(text, fmt.Sprintf("skyaccess_serve_ingest_processed_total %d", accepted)) {
		t.Errorf("prom processed total disagrees with JSON view:\n%s",
			grepLines(text, "ingest_processed"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetricsConcurrentWithFlush is the regression test for the metrics
// lock fix: /metrics (both views) is hammered concurrently with ingest and
// epoch flushes. Meaningful under -race (make racecheck runs this
// package); also asserts the handler never errors mid-flush.
func TestMetricsConcurrentWithFlush(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db), QueryDB: db, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(600, 42)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Metrics hammer: alternate JSON and prom views.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			urls := []string{ts.URL + "/metrics", ts.URL + "/metrics?format=prom"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				code, _, body := get(t, urls[(w+i)%2], "")
				if code != 200 {
					t.Errorf("metrics status %d: %s", code, body)
					return
				}
			}
		}(w)
	}

	// Ingest + flush loop: every flush runs an epoch (Recluster, semcache
	// Install) while the hammers read.
	for lo := 0; lo < len(recs); lo += 100 {
		postNDJSON(t, ts.URL, recs[lo:lo+100])
		s.Flush()
	}
	close(stop)
	wg.Wait()

	if got := s.epochs.Load(); got < 6 {
		t.Errorf("epochs = %d, want >= 6", got)
	}
}

// TestSlowlogEndpoint drives queries through POST /query and checks
// /debug/slowlog ranks them without exposing raw SQL.
func TestSlowlogEndpoint(t *testing.T) {
	obs.DefaultSlowLog.Reset()
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db), QueryDB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postNDJSON(t, ts.URL, synthRecords(100, 42))
	s.Flush()
	sql := "SELECT TOP 5 objid FROM Photoz WHERE objid BETWEEN 1 AND 9"
	if code, _, reply := postQuery(t, ts.URL, "text/plain", sql); code != 200 {
		t.Fatalf("query status %d: %+v", code, reply)
	}

	code, _, body := get(t, ts.URL+"/debug/slowlog?k=5", "")
	if code != 200 {
		t.Fatalf("slowlog status %d: %s", code, body)
	}
	var reply struct {
		Entries []slowlogEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("slowlog json: %v", err)
	}
	if len(reply.Entries) == 0 {
		t.Fatal("slowlog empty after a /query")
	}
	foundQuery := false
	for i, e := range reply.Entries {
		if len(e.Fingerprint) != 16 {
			t.Errorf("entry %d fingerprint %q not 16 hex chars", i, e.Fingerprint)
		}
		if strings.Contains(e.Fingerprint, " ") || strings.Contains(strings.ToUpper(e.Fingerprint), "SELECT") {
			t.Errorf("entry %d leaks SQL: %+v", i, e)
		}
		if i > 0 && e.Seconds > reply.Entries[i-1].Seconds {
			t.Errorf("entries not sorted slowest-first at %d", i)
		}
		if e.Stage == "query" {
			foundQuery = true
		}
	}
	if !foundQuery {
		t.Errorf("no query-stage entry in slowlog: %+v", reply.Entries)
	}

	if code, _, body := get(t, ts.URL+"/debug/slowlog?k=bogus", ""); code != 400 {
		t.Errorf("bad k: status %d, body %s", code, body)
	}
}
