package interestcache

import (
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/memdb"
)

// budgetCache builds a verifying cache over testDB (or cfg.DB when set)
// without installing anything.
func budgetCache(cfg Config) *Cache {
	if cfg.DB == nil {
		cfg.DB = testDB()
	}
	cfg.Extractor = &extract.Extractor{}
	cfg.Templates = &extract.TemplateCache{}
	cfg.Verify = true
	return New(cfg)
}

func tSummary(id int, iv interval.Interval) *aggregate.Summary {
	return summary(id, []string{"T"}, map[string]interval.Interval{"T.u": iv}, nil)
}

// A T region of k rows costs k rows × 2 numeric cells × 9 bytes.
const tRowBytes = 2 * 9

func TestBudgetExactFit(t *testing.T) {
	// Four rows = 72 bytes; a budget of exactly 72 must keep the region
	// resident, one byte less must demote it to a shadow.
	c := budgetCache(Config{BudgetBytes: 4 * tRowBytes})
	c.Install(1, []*aggregate.Summary{tSummary(1, interval.Closed(5, 8))})
	m := c.Metrics()
	if m.Regions != 1 || m.ShadowRegions != 0 || m.BytesResident != 4*tRowBytes {
		t.Fatalf("exact fit: %+v", m)
	}
	if _, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8"); err != nil || !info.Hit {
		t.Fatalf("hit expected: %+v %v", info, err)
	}

	c = budgetCache(Config{BudgetBytes: 4*tRowBytes - 1})
	c.Install(1, []*aggregate.Summary{tSummary(1, interval.Closed(5, 8))})
	m = c.Metrics()
	if m.Regions != 0 || m.ShadowRegions != 1 || m.BytesResident != 0 {
		t.Fatalf("one byte short: %+v", m)
	}
	if _, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8"); err != nil || info.Hit {
		t.Fatalf("miss expected: %+v %v", info, err)
	}
	if m = c.Metrics(); m.NearMisses != 1 {
		t.Fatalf("shadow near-miss not credited: %+v", m)
	}
	// Re-install: the size is now in the book, so the oversized region is
	// never even materialised.
	c.Install(2, []*aggregate.Summary{tSummary(7, interval.Closed(5, 8))})
	if m = c.Metrics(); m.Regions != 0 || m.ShadowRegions != 1 {
		t.Fatalf("known-oversize re-admitted: %+v", m)
	}
}

func TestProbationAdmitThenEvict(t *testing.T) {
	hot := tSummary(1, interval.Closed(5, 8))
	newcomer := tSummary(2, interval.Closed(11, 14))
	c := budgetCache(Config{BudgetBytes: 8 * tRowBytes})
	c.Install(1, []*aggregate.Summary{hot})
	for i := 0; i < 3; i++ {
		if _, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8"); err != nil || !info.Hit {
			t.Fatalf("warm-up hit %d: %+v %v", i, info, err)
		}
	}
	// Second generation brings a zero-heat newcomer; the budget fits both,
	// and the newcomer is admitted on probation.
	c.Install(2, []*aggregate.Summary{hot, newcomer})
	m := c.Metrics()
	if m.Regions != 2 || m.ProbationAdmits < 1 {
		t.Fatalf("probation admit: %+v", m)
	}
	// Shrinking the budget to one region's bytes must evict the coldest —
	// the newcomer — immediately.
	c.SetBudget(4 * tRowBytes)
	m = c.Metrics()
	if m.Regions != 1 || m.Evicted < 1 || m.PerRegion[0].ID != 1 {
		t.Fatalf("post-shrink: %+v", m)
	}
	if _, info, err := c.Query("SELECT v FROM T WHERE u >= 11 AND u <= 14"); err != nil || info.Hit {
		t.Fatalf("evicted region still serving: %+v %v", info, err)
	}
	if _, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8"); err != nil || !info.Hit {
		t.Fatalf("hot region lost: %+v %v", info, err)
	}
	if m = c.Metrics(); m.NearMisses < 1 || m.VerifyFailed != 0 {
		t.Fatalf("final metrics: %+v", m)
	}
}

func TestHeatCarryThreeGenerations(t *testing.T) {
	// Budget fits one region. Generation 1 admits A (candidate order);
	// near-misses on B's shadow must flip residency at generation 2, and
	// the carried heat must keep B resident through generation 3.
	a := func(id int) *aggregate.Summary { return tSummary(id, interval.Closed(1, 4)) }
	b := func(id int) *aggregate.Summary { return tSummary(id, interval.Closed(11, 14)) }
	qB := "SELECT v FROM T WHERE u >= 11 AND u <= 14"
	c := budgetCache(Config{BudgetBytes: 4 * tRowBytes})

	c.Install(1, []*aggregate.Summary{a(1), b(2)})
	if m := c.Metrics(); m.Regions != 1 || m.PerRegion[0].ID != 1 || m.ShadowRegions != 1 {
		t.Fatalf("gen1: %+v", m)
	}
	for i := 0; i < 3; i++ {
		if _, info, _ := c.Query(qB); info.Hit {
			t.Fatal("gen1: B should be a shadow")
		}
	}

	c.Install(2, []*aggregate.Summary{a(11), b(12)})
	if m := c.Metrics(); m.Regions != 1 || m.PerRegion[0].ID != 12 || m.Evicted != 1 {
		t.Fatalf("gen2: %+v", m)
	}
	if _, info, err := c.Query(qB); err != nil || !info.Hit {
		t.Fatalf("gen2: B hit expected: %+v %v", info, err)
	}

	c.Install(3, []*aggregate.Summary{a(21), b(22)})
	if m := c.Metrics(); m.Regions != 1 || m.PerRegion[0].ID != 22 {
		t.Fatalf("gen3: %+v", m)
	}
	if _, info, err := c.Query(qB); err != nil || !info.Hit {
		t.Fatalf("gen3: B hit expected: %+v %v", info, err)
	}
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("verify failures: %+v", m)
	}
}

func TestComposedQueryByteIdentical(t *testing.T) {
	// Two overlapping regions tile [5,15]; row u=10 is in both, so the
	// union store must dedup it positionally. Verify is on: byte identity
	// with direct execution is enforced on every composed hit.
	c := budgetCache(Config{})
	c.Install(1, []*aggregate.Summary{
		tSummary(1, interval.Closed(1, 10)),
		tSummary(2, interval.Closed(10, 20)),
	})
	q := "SELECT v FROM T WHERE u >= 5 AND u <= 15"
	rs, info, err := c.Query(q)
	if err != nil || !info.Hit || info.Path != "composed" || len(info.Regions) != 2 {
		t.Fatalf("composed hit expected: %+v %v", info, err)
	}
	if len(rs.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 (dedup failed?)", len(rs.Rows))
	}
	// Repeat: the union store is cached on the snapshot.
	if _, info, err := c.Query(q); err != nil || info.Path != "composed" {
		t.Fatalf("second composed hit: %+v %v", info, err)
	}
	m := c.Metrics()
	if m.ComposedHits != 2 || m.VerifyFailed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestComposedGapMisses(t *testing.T) {
	// (8,12) is uncovered; the cover search must refuse rather than serve
	// a hole.
	c := budgetCache(Config{})
	c.Install(1, []*aggregate.Summary{
		tSummary(1, interval.Closed(1, 8)),
		tSummary(2, interval.Closed(12, 20)),
	})
	_, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 15")
	if err != nil || info.Hit || info.Reason != "no-region" {
		t.Fatalf("gap must miss: %+v %v", info, err)
	}
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestAggSingleRegion(t *testing.T) {
	// HAVING statements are rejected by safeShape but served by the agg
	// path: containment on the WHERE-only area, full statement executed on
	// the region store.
	c := budgetCache(Config{})
	c.Install(1, []*aggregate.Summary{tSummary(1, interval.Closed(0, 100))})
	q := "SELECT u, COUNT(*) FROM T WHERE u >= 2 AND u <= 9 GROUP BY u HAVING COUNT(*) >= 1"
	rs, info, err := c.Query(q)
	if err != nil || !info.Hit || info.Path != "agg" {
		t.Fatalf("agg hit expected: %+v %v", info, err)
	}
	if len(rs.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rs.Rows))
	}
	// Second time through the cached shape class.
	if _, info, err := c.Query(q); err != nil || info.Path != "agg" {
		t.Fatalf("second agg hit: %+v %v", info, err)
	}
	m := c.Metrics()
	if m.AggHits != 2 || m.VerifyFailed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestPreaggCombine(t *testing.T) {
	// Two position-disjoint halves tile [1,20]; COUNT/MIN/MAX merge from
	// the per-region books without materialising the union store.
	c := budgetCache(Config{})
	c.Install(1, []*aggregate.Summary{
		tSummary(1, interval.Closed(1, 10)),
		tSummary(2, interval.Interval{Lo: 10, LoOpen: true, Hi: 20}),
	})
	q := "SELECT u, COUNT(*), MIN(v), MAX(v) FROM T WHERE u >= 1 AND u <= 20 GROUP BY u HAVING COUNT(*) >= 1"
	rs, info, err := c.Query(q)
	if err != nil || !info.Hit || info.Path != "preagg" || len(info.Regions) != 2 {
		t.Fatalf("preagg hit expected: %+v %v", info, err)
	}
	if len(rs.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rs.Rows))
	}
	if m := c.Metrics(); m.PreaggHits != 1 || m.VerifyFailed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// spanDB has a group column whose groups span both halves of the x range.
func spanDB() *memdb.DB {
	db := memdb.New(nil)
	db.CreateTable("T2", "g", "x")
	for i := 1; i <= 20; i++ {
		db.Insert("T2", memdb.N(float64(i%2)), memdb.N(float64(i)))
	}
	return db
}

func t2Summary(id int, iv interval.Interval) *aggregate.Summary {
	return summary(id, []string{"T2"}, map[string]interval.Interval{"T2.x": iv}, nil)
}

func TestPreaggSumSpanningGroupFallsBack(t *testing.T) {
	// SUM is float-order-sensitive: a group spanning two members must not
	// be merged from partials — the query falls back to the union store
	// ("composed"), which is still a hit and still byte-identical.
	c := budgetCache(Config{DB: spanDB()})
	c.Install(1, []*aggregate.Summary{
		t2Summary(1, interval.Closed(1, 10)),
		t2Summary(2, interval.Interval{Lo: 10, LoOpen: true, Hi: 20}),
	})
	qSum := "SELECT g, SUM(x) FROM T2 WHERE x >= 1 AND x <= 20 GROUP BY g HAVING COUNT(*) >= 1"
	_, info, err := c.Query(qSum)
	if err != nil || !info.Hit || info.Path != "composed" {
		t.Fatalf("SUM must fall back to the union store: %+v %v", info, err)
	}
	// COUNT merges associatively even across spanning groups.
	qCount := "SELECT g, COUNT(*) FROM T2 WHERE x >= 1 AND x <= 20 GROUP BY g HAVING COUNT(*) > 1"
	rs, info, err := c.Query(qCount)
	if err != nil || !info.Hit || info.Path != "preagg" {
		t.Fatalf("COUNT must combine: %+v %v", info, err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rs.Rows))
	}
	if m := c.Metrics(); m.VerifyFailed != 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestRegionTTLCarryAcrossInstall(t *testing.T) {
	c := budgetCache(Config{RegionTTL: time.Hour})
	c.Install(1, []*aggregate.Summary{tSummary(1, interval.Closed(5, 8))})
	if _, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8"); err != nil || !info.Hit {
		t.Fatalf("gen1 hit: %+v %v", info, err)
	}
	// Same area re-mined under a new cluster ID: the store is carried, not
	// rebuilt, and the hit reports its (non-zero) age.
	c.Install(2, []*aggregate.Summary{tSummary(9, interval.Closed(5, 8))})
	if m := c.Metrics(); m.Reused != 1 {
		t.Fatalf("expected carried region: %+v", m)
	}
	_, info, err := c.Query("SELECT v FROM T WHERE u >= 5 AND u <= 8")
	if err != nil || !info.Hit || info.RegionID != 9 || info.Staleness <= 0 {
		t.Fatalf("gen2 carried hit: %+v %v", info, err)
	}
}

func TestRegionTTLStaleMiss(t *testing.T) {
	c := budgetCache(Config{RegionTTL: 30 * time.Millisecond})
	c.Install(1, []*aggregate.Summary{tSummary(1, interval.Closed(5, 8))})
	q := "SELECT v FROM T WHERE u >= 5 AND u <= 8"
	if _, info, err := c.Query(q); err != nil || !info.Hit {
		t.Fatalf("fresh hit: %+v %v", info, err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, info, err := c.Query(q); err != nil || info.Hit || info.Reason != "stale" {
		t.Fatalf("stale miss expected: %+v %v", info, err)
	}
	if m := c.Metrics(); m.StaleMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	// The next install rebuilds (store too old to carry) and serving resumes.
	c.Install(2, []*aggregate.Summary{tSummary(9, interval.Closed(5, 8))})
	if m := c.Metrics(); m.Reused != 0 {
		t.Fatalf("expired store must not be carried: %+v", m)
	}
	if _, info, err := c.Query(q); err != nil || !info.Hit {
		t.Fatalf("rebuilt hit: %+v %v", info, err)
	}
}
