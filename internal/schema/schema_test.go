package schema

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/interval"
)

func testSchema() *Schema {
	s := New()
	s.Add(NewRelation("SpecObjAll",
		Column{Name: "specobjid", Type: Numeric},
		Column{Name: "plate", Type: Numeric, Domain: interval.Closed(0, 20000)},
		Column{Name: "mjd", Type: Numeric},
		Column{Name: "class", Type: Categorical, Values: []string{"STAR", "GALAXY", "QSO"}},
	))
	s.Add(NewRelation("PhotoObjAll",
		Column{Name: "objid", Type: Numeric},
		Column{Name: "ra", Type: Numeric, Domain: interval.Closed(0, 360)},
		Column{Name: "dec", Type: Numeric, Domain: interval.Closed(-90, 90)},
	))
	return s
}

func TestRelationLookupCaseInsensitive(t *testing.T) {
	s := testSchema()
	if s.Relation("specobjall") == nil {
		t.Fatal("case-insensitive relation lookup failed")
	}
	r := s.Relation("SPECOBJALL")
	if r.Column("PLATE") == nil {
		t.Fatal("case-insensitive column lookup failed")
	}
	if got := r.QualifiedColumn("PLATE"); got != "SpecObjAll.plate" {
		t.Errorf("qualified = %q, want SpecObjAll.plate", got)
	}
	if s.CanonicalTable("photoobjall") != "PhotoObjAll" {
		t.Error("canonical table name not preserved")
	}
	if s.CanonicalTable("NoSuchTable") != "NoSuchTable" {
		t.Error("unknown table should pass through")
	}
}

func TestResolveColumn(t *testing.T) {
	s := testSchema()
	got := s.ResolveColumn("ra", []string{"SpecObjAll", "PhotoObjAll"})
	if got != "PhotoObjAll.ra" {
		t.Errorf("resolve ra = %q, want PhotoObjAll.ra", got)
	}
	got = s.ResolveColumn("plate", []string{"PhotoObjAll", "SpecObjAll"})
	if got != "SpecObjAll.plate" {
		t.Errorf("resolve plate = %q", got)
	}
	// Unknown column falls back to first candidate.
	got = s.ResolveColumn("mystery", []string{"photoobjall"})
	if got != "PhotoObjAll.mystery" {
		t.Errorf("fallback = %q", got)
	}
}

func TestSplitQualified(t *testing.T) {
	rel, col, ok := SplitQualified("SpecObjAll.plate")
	if !ok || rel != "SpecObjAll" || col != "plate" {
		t.Errorf("split = %q %q %v", rel, col, ok)
	}
	if _, _, ok := SplitQualified("bare"); ok {
		t.Error("bare name should not split")
	}
}

func TestEffectiveDomain(t *testing.T) {
	s := testSchema()
	c := s.Relation("PhotoObjAll").Column("dec")
	if !c.EffectiveDomain().Equal(interval.Closed(-90, 90)) {
		t.Errorf("domain = %v", c.EffectiveDomain())
	}
	c2 := s.Relation("SpecObjAll").Column("mjd")
	if !c2.EffectiveDomain().IsFull() {
		t.Error("unspecified numeric domain should default to full line")
	}
}

func TestStatsSeedSampleDoubling(t *testing.T) {
	st := NewStats()
	st.SeedNumericSample("T.u", []float64{10, 20, 30})
	// Range [10,30] doubled: [10-10, 30+10] = [0, 40].
	acc, ok := st.NumericAccess("T.u")
	if !ok || !acc.Equal(interval.Closed(0, 40)) {
		t.Errorf("access = %v ok=%v, want [0,40]", acc, ok)
	}
	cnt, _ := st.NumericContent("T.u")
	if !cnt.Equal(interval.Closed(0, 40)) {
		t.Errorf("content = %v, want [0,40]", cnt)
	}
}

func TestStatsObserveGrowsAccessNotContent(t *testing.T) {
	st := NewStats()
	st.SeedNumericContent("T.u", interval.Closed(0, 10))
	st.ObserveNumeric("T.u", 25)
	st.ObserveNumeric("T.u", -5)
	acc, _ := st.NumericAccess("T.u")
	if !acc.Equal(interval.Closed(-5, 25)) {
		t.Errorf("access = %v, want [-5,25]", acc)
	}
	cnt, _ := st.NumericContent("T.u")
	if !cnt.Equal(interval.Closed(0, 10)) {
		t.Errorf("content must not grow: %v", cnt)
	}
	// Observation inside access leaves it unchanged.
	st.ObserveNumeric("T.u", 3)
	acc, _ = st.NumericAccess("T.u")
	if !acc.Equal(interval.Closed(-5, 25)) {
		t.Errorf("access changed unexpectedly: %v", acc)
	}
}

func TestStatsObserveUnseededColumn(t *testing.T) {
	st := NewStats()
	st.ObserveNumeric("T.new", 7)
	acc, ok := st.NumericAccess("T.new")
	if !ok || !acc.Equal(interval.Point(7)) {
		t.Errorf("access = %v ok=%v", acc, ok)
	}
	if _, ok := st.NumericAccess("T.other"); ok {
		t.Error("unknown column should report !ok")
	}
}

func TestStatsCategorical(t *testing.T) {
	st := NewStats()
	st.SeedCategorical("S.class", []string{"STAR", "GALAXY"})
	st.ObserveCategorical("S.class", "QSO")
	acc, ok := st.CategoricalAccess("S.class")
	if !ok || len(acc) != 3 {
		t.Errorf("access = %v", acc)
	}
	cnt, _ := st.CategoricalContent("S.class")
	if len(cnt) != 2 {
		t.Errorf("content = %v, want 2 values", cnt)
	}
}

func TestStatsConcurrency(t *testing.T) {
	st := NewStats()
	st.SeedNumericContent("T.u", interval.Closed(0, 100))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st.ObserveNumeric("T.u", float64(g*1000+i))
				st.NumericAccess("T.u")
				st.ObserveCategorical("T.c", "v")
			}
		}(g)
	}
	wg.Wait()
	acc, _ := st.NumericAccess("T.u")
	if !acc.Contains(7499) {
		t.Errorf("access after concurrent growth = %v", acc)
	}
}

func TestContentBox(t *testing.T) {
	st := NewStats()
	st.SeedNumericContent("T.u", interval.Closed(0, 10))
	st.SeedNumericContent("T.v", interval.Closed(-1, 1))
	box := ContentBox(st)
	if !box.Get("T.u").Equal(interval.Closed(0, 10)) || !box.Get("T.v").Equal(interval.Closed(-1, 1)) {
		t.Errorf("content box = %v", box)
	}
}

func TestRelationsOrderAndStrings(t *testing.T) {
	s := testSchema()
	rels := s.Relations()
	if len(rels) != 2 || rels[0].Name != "SpecObjAll" || rels[1].Name != "PhotoObjAll" {
		t.Errorf("relations = %v", rels)
	}
	// Replacing keeps insertion order stable.
	s.Add(NewRelation("SpecObjAll", Column{Name: "only", Type: Numeric}))
	rels = s.Relations()
	if len(rels) != 2 || rels[0].Column("only") == nil {
		t.Errorf("after replace: %v", rels)
	}
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Error("ColumnType strings")
	}
}

func TestStatsIntrospection(t *testing.T) {
	st := NewStats()
	st.SeedNumericContent("T.b", interval.Closed(0, 1))
	st.SeedNumericContent("T.a", interval.Closed(0, 1))
	st.SeedCategorical("T.c", []string{"x"})
	cols := st.NumericColumns()
	if len(cols) != 2 || cols[0] != "T.a" {
		t.Errorf("cols = %v", cols)
	}
	out := st.String()
	if !strings.Contains(out, "T.a: content=") || !strings.Contains(out, "|content|=1") {
		t.Errorf("string = %q", out)
	}
}
