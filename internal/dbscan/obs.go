package dbscan

import "repro/internal/obs"

// Clustering instruments. Region queries are the DBSCAN hot path — one per
// point per run — so both backends (brute-force scan, pivot-pruned scan)
// record a latency span and a counter, making the pivot index's effect
// directly visible as a histogram shift on /metrics?format=prom.
var (
	regionQueryStage = obs.NewStage("dbscan_region_query")
	pivotRegionStage = obs.NewStage("dbscan_pivot_region")
	pivotBuildStage  = obs.NewStage("dbscan_pivot_build")

	regionQueriesTotal = obs.NewCounter("skyaccess_dbscan_region_queries_total",
		"brute-force region queries executed")
	pivotRegionsTotal = obs.NewCounter("skyaccess_dbscan_pivot_regions_total",
		"pivot-pruned region queries executed")
	pivotBuildsTotal = obs.NewCounter("skyaccess_dbscan_pivot_builds_total",
		"pivot index builds (full constructions, not extensions)")
	pivotExtendsTotal = obs.NewCounter("skyaccess_dbscan_pivot_extends_total",
		"pivot index suffix extensions reusing the existing pivot set")
)
