package distance

import (
	"sync"
	"sync/atomic"
)

// DynamicPairCache memoizes a symmetric pairwise distance over a GROWING
// point set. Unlike PairCache, whose triangular layout is fixed at
// construction for exactly n points, the dynamic cache keys pairs by their
// packed indices and therefore survives appends: the epoch-based
// incremental miner keeps one instance alive across re-clustering epochs,
// so every pair evaluated in an earlier epoch is a cache hit in all later
// ones and only pairs involving newly-arrived points cost a real
// ProfileDistance evaluation.
//
// It is safe for concurrent use; fn must be too (ProfileDistance is — it
// only reads precompiled profiles). Racing goroutines may both evaluate a
// missing pair; the duplicate store is benign because fn is deterministic.
//
// Memory grows with the number of DISTINCT pairs actually evaluated, not
// with n²: DBSCAN under partitioning only ever evaluates intra-partition
// pairs, and pivot pruning keeps even those sparse.
type DynamicPairCache struct {
	fn     func(i, j int) float64
	shards [dynShards]dynShard
	hits   atomic.Int64
	evals  atomic.Int64
}

type dynShard struct {
	mu sync.RWMutex
	m  map[uint64]float64
}

const dynShards = 64

// NewDynamicPairCache builds an empty growable cache for the symmetric
// distance fn. Indices must stay below 2³² (pairs are packed into one
// uint64 key), which the mining pipeline's distinct-area counts are far
// under.
func NewDynamicPairCache(fn func(i, j int) float64) *DynamicPairCache {
	c := &DynamicPairCache{fn: fn}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]float64)
	}
	return c
}

// SetFn swaps the underlying distance function without discarding stored
// pairs. The incremental miner calls it each epoch because its profile
// slice header changes as new items append; the values the new fn computes
// for already-cached pairs must be identical (same registry generation) or
// the cache should be discarded instead.
func (c *DynamicPairCache) SetFn(fn func(i, j int) float64) { c.fn = fn }

// Dist returns the memoized distance between points i and j.
func (c *DynamicPairCache) Dist(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	key := uint64(i)<<32 | uint64(j)
	s := &c.shards[key%dynShards]
	s.mu.RLock()
	d, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return d
	}
	c.evals.Add(1)
	d = c.fn(i, j)
	s.mu.Lock()
	s.m[key] = d
	s.mu.Unlock()
	return d
}

// Evals returns the number of underlying distance evaluations (cache
// misses). Racing goroutines may both evaluate a pair, so this can exceed
// the number of distinct pairs by a sliver.
func (c *DynamicPairCache) Evals() int64 { return c.evals.Load() }

// Hits returns the number of lookups served from memory.
func (c *DynamicPairCache) Hits() int64 { return c.hits.Load() }

// Len returns the number of distinct pairs stored.
func (c *DynamicPairCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
