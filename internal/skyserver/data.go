package skyserver

import (
	"fmt"
	"math/rand"

	"repro/internal/interval"
	"repro/internal/memdb"
	"repro/internal/schema"
)

// DataConfig controls the synthetic database.
type DataConfig struct {
	// RowsPerTable is the base row count (large tables get it as-is, small
	// catalogue tables less). Default 2000.
	RowsPerTable int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c DataConfig) rows() int {
	if c.RowsPerTable <= 0 {
		return 2000
	}
	return c.RowsPerTable
}

// BuildDatabase creates and fills the in-memory SkyServer instance. The data
// respects the content bounds of schema.go and reproduces the density
// artefacts the paper's coverage numbers show: SpecObjAll objects are sparse
// at low right ascension (cluster 7 covers 17% of the area but only 4% of
// the objects), zooSpec objects cluster near the equator (cluster 14: 16%
// area vs 1% objects), and Photoz redshifts concentrate near z ≈ 0.1.
func BuildDatabase(cfg DataConfig) *memdb.DB {
	r := rand.New(rand.NewSource(cfg.Seed))
	db := memdb.New(Schema())
	n := cfg.rows()

	uniform := func(iv interval.Interval) float64 {
		return iv.Lo + r.Float64()*(iv.Hi-iv.Lo)
	}
	// skewLow concentrates mass towards the upper end of iv: the fraction of
	// objects below the first quarter of the range is small.
	skewHigh := func(iv interval.Interval) float64 {
		f := r.Float64()
		f = f * f // quadratic skew towards 0
		return iv.Hi - f*(iv.Hi-iv.Lo)
	}

	db.CreateTable("PhotoObjAll", "objid", "ra", "dec", "u", "g", "r", "i", "z", "mode")
	for i := 0; i < n; i++ {
		db.Insert("PhotoObjAll",
			memdb.N(uniform(PhotozObjidContent)),
			memdb.N(uniform(RaContent)),
			memdb.N(uniform(PhotoDecContent)),
			memdb.N(14+r.Float64()*12), memdb.N(14+r.Float64()*12), memdb.N(14+r.Float64()*12),
			memdb.N(14+r.Float64()*12), memdb.N(14+r.Float64()*12),
			memdb.N(float64(1+r.Intn(2))),
		)
	}

	db.CreateTable("Photoz", "objid", "z", "zerr")
	for i := 0; i < n; i++ {
		// Redshifts concentrate at low z within content [-0.1, 3.0).
		z := -0.1 + 3.1*r.Float64()*r.Float64()*r.Float64()
		if z >= 3.0 {
			z = 2.999
		}
		db.Insert("Photoz",
			memdb.N(uniform(PhotozObjidContent)),
			memdb.N(z),
			memdb.N(r.Float64()*0.1),
		)
	}

	db.CreateTable("SpecObjAll", "specobjid", "plate", "mjd", "ra", "dec", "z", "class")
	for i := 0; i < n; i++ {
		// Low-ra sky is sparsely surveyed: skew towards high ra.
		db.Insert("SpecObjAll",
			memdb.N(uniform(SpecObjidContent)),
			memdb.N(uniform(PlateContent)),
			memdb.N(uniform(MjdContent)),
			memdb.N(skewHigh(RaContent)),
			memdb.N(uniform(interval.Closed(-15, 75))),
			memdb.N(r.Float64()*2),
			memdb.S(Classes[r.Intn(len(Classes))]),
		)
	}

	db.CreateTable("SpecPhotoAll", "specobjid", "objid", "ra", "dec")
	for i := 0; i < n; i++ {
		db.Insert("SpecPhotoAll",
			memdb.N(uniform(SpecObjidContent)),
			memdb.N(uniform(PhotozObjidContent)),
			memdb.N(skewHigh(RaContent)),
			memdb.N(uniform(interval.Closed(-15, 75))),
		)
	}

	for _, name := range []string{"galSpecLine", "galSpecInfo"} {
		switch name {
		case "galSpecLine":
			db.CreateTable(name, "specobjid", "h_alpha_flux", "h_beta_flux")
		default:
			db.CreateTable(name, "specobjid", "snmedian", "targettype")
		}
	}
	for i := 0; i < n; i++ {
		db.Insert("galSpecLine",
			memdb.N(uniform(GalSpecObjidContent)),
			memdb.N(r.NormFloat64()*50), memdb.N(r.NormFloat64()*20))
		db.Insert("galSpecInfo",
			memdb.N(uniform(GalSpecObjidContent)),
			memdb.N(r.Float64()*100),
			memdb.S([]string{"GALAXY", "QSO", "ANY"}[r.Intn(3)]))
	}

	db.CreateTable("galSpecExtra", "specobjid", "bptclass")
	db.CreateTable("galSpecIndx", "specObjID", "lick_hd_a")
	for i := 0; i < n; i++ {
		id := uniform(GalSpecObjidContent)
		db.Insert("galSpecExtra", memdb.N(id), memdb.N(float64(r.Intn(6)-1)))
		db.Insert("galSpecIndx", memdb.N(id), memdb.N(r.NormFloat64()*3))
	}

	db.CreateTable("sppLines", "specobjid", "gwholemask", "gwholeside")
	db.CreateTable("sppParams", "specobjid", "fehadop", "loggadop")
	for i := 0; i < n; i++ {
		id := uniform(GalSpecObjidContent)
		mask := 0.0
		if r.Intn(4) == 0 {
			mask = float64(1 + r.Intn(1023))
		}
		db.Insert("sppLines", memdb.N(id), memdb.N(mask), memdb.N(r.Float64()*100))
		db.Insert("sppParams", memdb.N(id), memdb.N(-4+r.Float64()*5), memdb.N(r.Float64()*5))
	}

	db.CreateTable("zooSpec", "specobjid", "ra", "dec", "p_el", "p_cs")
	for i := 0; i < n; i++ {
		// Morphology objects hug the equator: |dec| small for most rows.
		dec := r.NormFloat64() * 12
		if dec < ZooDecContent.Lo {
			dec = ZooDecContent.Lo
		}
		if dec > ZooDecContent.Hi {
			dec = ZooDecContent.Hi
		}
		db.Insert("zooSpec",
			memdb.N(uniform(GalSpecObjidContent)),
			memdb.N(uniform(RaContent)),
			memdb.N(dec),
			memdb.N(r.Float64()), memdb.N(r.Float64()))
	}

	db.CreateTable("emissionLinesPort", "specobjid", "ra", "dec")
	db.CreateTable("stellarMassPCAWisc", "specobjid", "ra", "mstellar_median")
	for i := 0; i < n; i++ {
		db.Insert("emissionLinesPort",
			memdb.N(uniform(GalSpecObjidContent)),
			memdb.N(skewHigh(RaContent)),
			memdb.N(uniform(interval.Closed(-10, 70))))
		db.Insert("stellarMassPCAWisc",
			memdb.N(uniform(GalSpecObjidContent)),
			memdb.N(skewHigh(RaContent)),
			memdb.N(8+r.Float64()*4))
	}

	db.CreateTable("AtlasOutline", "objid", "span")
	for i := 0; i < n; i++ {
		db.Insert("AtlasOutline",
			memdb.N(uniform(AtlasObjidContent)),
			memdb.N(r.Float64()*100))
	}

	db.CreateTable("DBObjects", "name", "access", "type")
	catalogue := n / 10
	if catalogue < 50 {
		catalogue = 50
	}
	for i := 0; i < catalogue; i++ {
		db.Insert("DBObjects",
			memdb.S(fmt.Sprintf("obj%04d", i)),
			memdb.S(DBObjectsAccess[r.Intn(len(DBObjectsAccess))]),
			memdb.S(DBObjectsTypes[r.Intn(len(DBObjectsTypes))]))
	}
	return db
}

// SeedStats seeds a statistics registry from the database per Section 5.3:
// every numeric column gets content(a) from a 100-row sample with the
// range-doubling rule, every categorical column its value set.
func SeedStats(db *memdb.DB, s *schema.Stats) {
	for _, rel := range Schema().Relations() {
		for _, col := range rel.Columns {
			qualified := rel.Name + "." + col.Name
			if col.Type == schema.Numeric {
				if sample := db.SampleColumn(qualified, 100); len(sample) > 0 {
					s.SeedNumericSample(qualified, sample)
				}
				continue
			}
			if vals, ok := db.ContentValues(qualified); ok {
				s.SeedCategorical(qualified, vals)
			}
		}
	}
}
