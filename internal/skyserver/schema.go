// Package skyserver is the SkyServer substrate of this reproduction: the
// SDSS DR9 relations the paper's Table 1 touches, a deterministic synthetic
// data generator whose content bounding boxes match the bounds the paper
// reports (e.g. SpecObjAll.plate ∈ [266, 5141], SpecObjAll.mjd ∈
// [51578, 55752]), and a query-log generator whose workload mix mirrors the
// 24 clusters of Table 1 plus background noise, erroneous queries,
// bot-issued admin statements and MySQL-dialect queries (see DESIGN.md §1
// for the substitution argument).
package skyserver

import (
	"repro/internal/interval"
	"repro/internal/schema"
)

// Content bounds used by both the schema and the data generator. The
// in-content bounds reproduce the numbers visible in the paper's figures and
// Table 1; the "empty" ranges beyond them are what clusters 18-24 access.
var (
	// Photoz: photometric redshifts of photometric objects.
	PhotozObjidContent = interval.Closed(1.237650e18, 1.2376848e18)
	PhotozZContent     = interval.Closed(-0.1, 3.0)

	// SpecObjAll: the spectroscopic master table; Figure 1(a) plots
	// plate × mjd.
	SpecObjidContent = interval.Closed(3.0e17, 5.9e18)
	PlateContent     = interval.Closed(266, 5141)
	MjdContent       = interval.Closed(51578, 55752)

	// Photometry sky coverage; Figure 1(b) plots ra × dec, whose content
	// leaves dec < -25 empty (cluster 18 accesses dec ∈ [-90, -50]).
	RaContent       = interval.Closed(0, 360)
	PhotoDecContent = interval.Closed(-25, 85)

	// Value-added spectroscopic tables stop at an earlier specobjid than
	// SpecObjAll: clusters 19-21 access [3.52e18, 5.79e18], which is empty
	// there.
	GalSpecObjidContent = interval.Closed(1.0e18, 3.52e18)

	// zooSpec (Galaxy Zoo morphology); Figure 1(c): its dec content stops at
	// -11, and cluster 22 accesses [-100, -15] — including the impossible
	// dec = -100 the paper's astronomer flagged.
	ZooDecContent = interval.Closed(-11, 70)

	// AtlasOutline shares the photometric objid range.
	AtlasObjidContent = PhotozObjidContent
)

// Classes are the spectroscopic classes of SpecObjAll.
var Classes = []string{"STAR", "GALAXY", "QSO"}

// DBObjects value domains.
var (
	DBObjectsAccess = []string{"U", "S", "A"}
	DBObjectsTypes  = []string{"U", "V", "P", "F", "I"}
)

// Schema returns the SkyServer schema used by the case study.
func Schema() *schema.Schema {
	s := schema.New()
	num := func(name string, dom interval.Interval) schema.Column {
		return schema.Column{Name: name, Type: schema.Numeric, Domain: dom}
	}
	numU := func(name string) schema.Column {
		return schema.Column{Name: name, Type: schema.Numeric}
	}
	cat := func(name string, vals []string) schema.Column {
		return schema.Column{Name: name, Type: schema.Categorical, Values: vals}
	}

	s.Add(schema.NewRelation("PhotoObjAll",
		numU("objid"),
		num("ra", interval.Closed(0, 360)),
		num("dec", interval.Closed(-90, 90)),
		numU("u"), numU("g"), numU("r"), numU("i"), numU("z"),
		numU("mode"),
	))
	s.Add(schema.NewRelation("Photoz",
		numU("objid"),
		num("z", interval.Closed(-1, 10)),
		numU("zerr"),
	))
	s.Add(schema.NewRelation("SpecObjAll",
		numU("specobjid"),
		num("plate", interval.Closed(0, 20000)),
		num("mjd", interval.Closed(40000, 70000)),
		num("ra", interval.Closed(0, 360)),
		num("dec", interval.Closed(-90, 90)),
		num("z", interval.Closed(-1, 10)),
		cat("class", Classes),
	))
	s.Add(schema.NewRelation("SpecPhotoAll",
		numU("specobjid"), numU("objid"),
		num("ra", interval.Closed(0, 360)),
		num("dec", interval.Closed(-90, 90)),
	))
	s.Add(schema.NewRelation("galSpecLine",
		numU("specobjid"),
		numU("h_alpha_flux"),
		numU("h_beta_flux"),
	))
	s.Add(schema.NewRelation("galSpecInfo",
		numU("specobjid"),
		num("snmedian", interval.Closed(0, 1000)),
		cat("targettype", []string{"GALAXY", "QSO", "ANY"}),
	))
	s.Add(schema.NewRelation("galSpecExtra",
		numU("specobjid"),
		num("bptclass", interval.Closed(-1, 4)),
	))
	s.Add(schema.NewRelation("galSpecIndx",
		numU("specObjID"),
		numU("lick_hd_a"),
	))
	s.Add(schema.NewRelation("sppLines",
		numU("specobjid"),
		num("gwholemask", interval.Closed(0, 1023)),
		num("gwholeside", interval.Closed(0, 100)),
	))
	s.Add(schema.NewRelation("sppParams",
		numU("specobjid"),
		num("fehadop", interval.Closed(-5, 1)),
		num("loggadop", interval.Closed(0, 5)),
	))
	s.Add(schema.NewRelation("zooSpec",
		numU("specobjid"),
		num("ra", interval.Closed(0, 360)),
		num("dec", interval.Closed(-90, 90)),
		numU("p_el"),
		numU("p_cs"),
	))
	s.Add(schema.NewRelation("emissionLinesPort",
		numU("specobjid"),
		num("ra", interval.Closed(0, 360)),
		num("dec", interval.Closed(-90, 90)),
	))
	s.Add(schema.NewRelation("stellarMassPCAWisc",
		numU("specobjid"),
		num("ra", interval.Closed(0, 360)),
		numU("mstellar_median"),
	))
	s.Add(schema.NewRelation("AtlasOutline",
		numU("objid"),
		numU("span"),
	))
	s.Add(schema.NewRelation("DBObjects",
		cat("name", nil),
		cat("access", DBObjectsAccess),
		cat("type", DBObjectsTypes),
	))
	return s
}
