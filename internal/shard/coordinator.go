package shard

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/serve"
	"repro/internal/traffic"
)

// Config parameterises a Coordinator.
type Config struct {
	// Router owns the relation-set→shard assignment. Required.
	Router *Router
	// Nodes are the shards, indexed as the router indexes them. Required,
	// len(Nodes) == Router.Shards().
	Nodes []Node
	// QueueSize bounds each shard's pending-record queue (default 1024).
	// A full queue surfaces as 429 to the ingesting client — backpressure
	// propagates instead of buffering without bound.
	QueueSize int
	// BatchSize caps how many queued records one forwarded ingest carries
	// (default 128).
	BatchSize int
	// Eps is the shards' (shared, fixed) DBSCAN eps, used with the router's
	// observed max relation-set size to decide whether the merge is exact
	// (core.MergeExact). 0 falls back to the merged results' ChosenEps.
	Eps float64
	// Coverage, when set, attaches area/object coverage to the merged
	// clusters (shards run without a coverage source; the scalars are
	// cluster-local, so attaching once post-merge is equivalent).
	Coverage aggregate.DataSource
	// ReportTop caps merged report rows unless the request overrides (0 =
	// all).
	ReportTop int
	// Traffic declares that the shards mine per traffic class (they were
	// started with a traffic config) and enables the coordinator's
	// class-aware surfaces: /report?class=, /drift and /interfaces. Each
	// Flush then also fetches every shard's traffic bundle and merges it.
	Traffic bool
	// HealthInterval paces the liveness probe of every node (default 2s).
	HealthInterval time.Duration
	// RouterStatePath, when set, persists the router assignment on Close
	// and restores it in NewCoordinator (see Router.SaveState).
	RouterStatePath string
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	return c
}

// Coordinator fans ingested records out to shard nodes by relation-set key
// and merges their epoch results into one global Table-1 view. It carries
// the serve layer's determinism contract across the fan-out: after Flush,
// the merged /report reflects every record accepted before it, and — in the
// in-process topology — is byte-identical to a single batch mine.
type Coordinator struct {
	cfg    Config
	router *Router
	nodes  []Node

	// ingestMu serialises admission (mirrors serve.Server.enqueue: the
	// closed check and the queue send must be atomic with respect to
	// Close's channel close). It also guards the warmup staging state.
	ingestMu sync.Mutex
	closed   bool
	// stage buffers records whose relation-set key the router is still
	// observing (Route returned ShardStaged); bindStaged moves each key's
	// buffer to its owner when the router binds. Bounded by the router's
	// warmup horizon, so no extra cap is needed.
	stage map[string][]qlog.Record
	// pending is each shard's bind-time backlog: records (staged or live)
	// that found the shard's queue full. Enqueue drains it opportunistically
	// and appends behind it — per-shard FIFO through the pending queue is
	// what preserves per-key record order across the bind. pendingN records
	// total, capped at pendingCap → 429.
	pending    [][]qlog.Record
	pendingN   int
	pendingCap int

	queues    []chan qlog.Record
	enqueued  []atomic.Int64 // admitted to the shard queue
	forwarded []atomic.Int64 // accepted by the shard node
	dropped   []atomic.Int64 // abandoned after Close with the shard down
	// baseForwarded/baseAccepted carry the routing offsets restored from the
	// previous run's persisted state (see offsets.go), so the offsets the
	// coordinator persists are monotonic across restarts while the per-run
	// atomics keep their drained()/Status() meaning.
	baseForwarded []int64
	baseAccepted  int64
	down          []atomic.Bool
	retries       atomic.Int64

	accepted atomic.Int64
	rejected atomic.Int64
	start    time.Time

	senderWG   sync.WaitGroup
	stopHealth chan struct{}
	healthDone chan struct{}

	// flushMu serialises Flush; mergeMu guards the merged view.
	flushMu sync.Mutex
	mergeMu sync.RWMutex
	merged  *core.Result
	gen     int64
	stale   []string // node names whose contribution is last-known, not fresh

	// lastResults/lastStats cache each shard's most recent successful fetch
	// so a down shard degrades the merged report to stale instead of absent.
	lastResults []*core.Result
	lastStats   []*qlog.Stats

	// lastTraffic caches each shard's most recent traffic bundle (only
	// fetched with cfg.Traffic set); the merged* views are rebuilt from it
	// by remerge. All under mergeMu.
	lastTraffic  []*WireTraffic
	mergedClass  map[string]*core.Result
	mergedDrift  []traffic.Event
	mergedIfaces []traffic.Interface
	ifaceTracked int
}

// NewCoordinator builds a coordinator over cfg.Nodes and starts one sender
// goroutine per shard plus the health loop.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	n := len(cfg.Nodes)
	c := &Coordinator{
		cfg:         cfg,
		router:      cfg.Router,
		nodes:       cfg.Nodes,
		stage:       make(map[string][]qlog.Record),
		pending:     make([][]qlog.Record, n),
		pendingCap:  n * cfg.QueueSize,
		queues:      make([]chan qlog.Record, n),
		enqueued:    make([]atomic.Int64, n),
		forwarded:   make([]atomic.Int64, n),
		dropped:     make([]atomic.Int64, n),
		down:        make([]atomic.Bool, n),
		start:       time.Now(),
		stopHealth:  make(chan struct{}),
		healthDone:  make(chan struct{}),
		lastResults: make([]*core.Result, n),
		lastStats:   make([]*qlog.Stats, n),
		lastTraffic: make([]*WireTraffic, n),
	}
	c.baseForwarded = make([]int64, n)
	if cfg.RouterStatePath != "" {
		if err := c.router.LoadState(cfg.RouterStatePath); err != nil {
			return nil, err
		}
		if err := c.loadOffsets(); err != nil {
			return nil, err
		}
	}
	for i := range c.queues {
		c.queues[i] = make(chan qlog.Record, cfg.QueueSize)
		c.senderWG.Add(1)
		go c.sender(i)
	}
	go c.healthLoop()
	return c, nil
}

// Enqueue routes one record and admits it to the owning shard's queue (or,
// during the router's warmup, to the per-key staging buffer). Errors are
// serve's admission sentinels so serve.IngestHTTP maps them to the same
// status codes a single server would answer.
func (c *Coordinator) Enqueue(rec qlog.Record) error {
	shardIdx, key := c.router.Route(rec)
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	if c.closed {
		return serve.ErrClosed
	}
	if shardIdx == ShardStaged {
		c.stage[key] = append(c.stage[key], rec)
		c.accepted.Add(1)
		if c.router.NeedsBind() {
			c.bindStagedLocked()
		}
		return nil
	}
	return c.admitLocked(shardIdx, rec)
}

// admitLocked delivers one routed record to shard i, going through the
// shard's pending backlog when one exists so per-shard FIFO (and therefore
// per-key order) holds across the bind. Caller holds ingestMu.
func (c *Coordinator) admitLocked(i int, rec qlog.Record) error {
	c.drainPendingLocked(i)
	if len(c.pending[i]) > 0 {
		if c.pendingN >= c.pendingCap {
			c.rejected.Add(1)
			return serve.ErrQueueFull
		}
		c.pending[i] = append(c.pending[i], rec)
		c.pendingN++
		c.accepted.Add(1)
		return nil
	}
	select {
	case c.queues[i] <- rec:
		c.enqueued[i].Add(1)
		c.accepted.Add(1)
		return nil
	default:
		c.rejected.Add(1)
		return serve.ErrQueueFull
	}
}

// bindStagedLocked ends the router's warmup and hands every staged key's
// buffer to its newly bound owner, in deterministic (sorted-key) order.
// Buffers that outsize the shard queue spill to the shard's pending backlog
// rather than block — the senders drain the queues concurrently, and
// admitLocked/Flush/Close finish the job. Caller holds ingestMu.
func (c *Coordinator) bindStagedLocked() {
	bound := c.router.BindAll()
	if len(bound) == 0 && len(c.stage) == 0 {
		return
	}
	keys := make([]string, 0, len(bound))
	for k := range bound {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		i := bound[k]
		c.pending[i] = append(c.pending[i], c.stage[k]...)
		c.pendingN += len(c.stage[k])
		delete(c.stage, k)
	}
	for i := range c.pending {
		c.drainPendingLocked(i)
	}
}

// drainPendingLocked moves as much of shard i's pending backlog into its
// queue as fits right now, without blocking. Caller holds ingestMu.
func (c *Coordinator) drainPendingLocked(i int) {
	p := c.pending[i]
	moved := 0
	for moved < len(p) {
		select {
		case c.queues[i] <- p[moved]:
			c.enqueued[i].Add(1)
			moved++
		default:
			goto done
		}
	}
done:
	if moved > 0 {
		rest := p[moved:]
		if len(rest) == 0 {
			c.pending[i] = p[:0]
		} else {
			c.pending[i] = append(p[:0], rest...)
		}
		c.pendingN -= moved
	}
}

// finishBind forces the bind (when warmup never completed) and keeps
// draining pending backlogs until they are empty — skipping shards that are
// down, whose backlog stays buffered like their queue does.
func (c *Coordinator) finishBind() {
	c.ingestMu.Lock()
	if c.closed {
		// Close owns the bind and the backlog from here; touching the queues
		// again could race its channel close.
		c.ingestMu.Unlock()
		return
	}
	c.bindStagedLocked()
	c.ingestMu.Unlock()
	for {
		c.ingestMu.Lock()
		if c.closed {
			c.ingestMu.Unlock()
			return
		}
		remaining := 0
		for i := range c.pending {
			if c.down[i].Load() {
				continue
			}
			c.drainPendingLocked(i)
			remaining += len(c.pending[i])
		}
		c.ingestMu.Unlock()
		if remaining == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sender is shard i's single forwarder: it drains the queue in batches and
// delivers each batch in order, retrying the undelivered tail forever on
// backpressure (the shard's mining-lag 429 thereby paces the coordinator's
// own admission: the queue fills and the client sees 429). Transport errors
// mark the shard down but keep the batch buffered and retrying — records
// are abandoned only when the coordinator is closing and the shard stays
// unreachable.
func (c *Coordinator) sender(i int) {
	defer c.senderWG.Done()
	q := c.queues[i]
	batch := make([]qlog.Record, 0, c.cfg.BatchSize)
	for {
		rec, ok := <-q
		if !ok {
			return
		}
		batch = append(batch[:0], rec)
	collect:
		for len(batch) < c.cfg.BatchSize {
			select {
			case r, ok2 := <-q:
				if !ok2 {
					c.forward(i, batch)
					return
				}
				batch = append(batch, r)
			default:
				break collect
			}
		}
		c.forward(i, batch)
	}
}

func (c *Coordinator) forward(i int, batch []qlog.Record) {
	attempts := 0
	for len(batch) > 0 {
		n, err := c.nodes[i].Ingest(batch)
		if n > 0 {
			c.forwarded[i].Add(int64(n))
			batch = batch[n:]
			attempts = 0
		}
		if len(batch) == 0 {
			break
		}
		c.retries.Add(1)
		attempts++
		switch {
		case err == nil || retryableIngest(err):
			// Backpressure: the shard is mining as fast as it can.
			time.Sleep(time.Millisecond)
		default:
			c.down[i].Store(true)
			if c.isClosed() && attempts > 20 {
				c.dropped[i].Add(int64(len(batch)))
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	c.down[i].Store(false)
}

func (c *Coordinator) isClosed() bool {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	return c.closed
}

// healthLoop probes every node on a timer so /shard/status and report
// staleness reflect liveness even while no ingest is flowing. A probe only
// marks a shard down; recovery is detected by the next successful probe or
// forward.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHealth:
			return
		case <-t.C:
			for i, node := range c.nodes {
				c.down[i].Store(!node.Healthy())
			}
		}
	}
}

// drained reports whether shard i's queue has been fully delivered (or
// abandoned).
func (c *Coordinator) drained(i int) bool {
	return c.forwarded[i].Load()+c.dropped[i].Load() >= c.enqueued[i].Load()
}

// Flush makes the merged report deterministic: it binds any still-staged
// keys and delivers their buffers, waits for every accepted record to reach
// its shard, quiesces the shards, asks each to flush (final epoch), fetches
// the per-shard results and re-merges. Down shards are skipped — their
// last-known result stays in the merge and the shard is reported stale — so
// one dead node degrades the report instead of wedging it.
func (c *Coordinator) Flush() {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.finishBind()
	// Wait for the senders to deliver the backlog; a down shard's backlog
	// stays buffered and is excluded from the wait.
	for {
		pending := false
		for i := range c.nodes {
			if !c.down[i].Load() && !c.drained(i) {
				pending = true
			}
		}
		if !pending {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Quiesce before any final epoch: in the in-process topology the shards
	// share one stats registry, and an epoch compiles distance profiles from
	// it (distance.Matrix reads the per-column access sets) — so no shard may
	// run its flush epoch while another is still processing and observing.
	// Quiescing pins the registry generation, which makes the final full
	// recluster deterministic and batch-identical regardless of per-shard
	// timing.
	for {
		busy := false
		for i, node := range c.nodes {
			if c.down[i].Load() {
				continue
			}
			tel, err := node.Telemetry()
			if err != nil {
				c.down[i].Store(true)
				continue
			}
			if tel.Processed < tel.Accepted {
				busy = true
			}
		}
		if !busy {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var wg sync.WaitGroup
	fresh := make([]bool, len(c.nodes))
	for i, node := range c.nodes {
		if c.down[i].Load() {
			continue
		}
		wg.Add(1)
		go func(i int, node Node) {
			defer wg.Done()
			if err := node.Flush(); err != nil {
				c.down[i].Store(true)
				return
			}
			res, _, err := node.Result()
			if err != nil {
				c.down[i].Store(true)
				return
			}
			st, err := node.Stats()
			if err != nil {
				c.down[i].Store(true)
				return
			}
			var tr *WireTraffic
			if c.cfg.Traffic {
				if tr, err = node.Traffic(); err != nil {
					c.down[i].Store(true)
					return
				}
			}
			c.mergeMu.Lock()
			c.lastResults[i] = res
			c.lastStats[i] = st
			if tr != nil {
				c.lastTraffic[i] = tr
			}
			c.mergeMu.Unlock()
			fresh[i] = true
		}(i, node)
	}
	wg.Wait()
	c.remerge(fresh)
	// Persist the routing state at every deterministic point, not just on
	// Close: a coordinator crash after a flush then loses no binding and no
	// offset — the shards' WALs hold the records, this sidecar holds who
	// owns them. Best-effort here (Flush has no error path; Close retries
	// with propagation).
	_ = c.persistState()
}

// remerge rebuilds the merged view from the per-shard result cache. fresh
// marks which entries were refetched this round; the rest are stale.
func (c *Coordinator) remerge(fresh []bool) {
	c.mergeMu.Lock()
	defer c.mergeMu.Unlock()
	var stale []string
	for i := range c.nodes {
		if !fresh[i] {
			stale = append(stale, c.nodes[i].Name())
		}
	}
	merged := core.MergeResults(c.lastResults...)
	if c.cfg.Coverage != nil {
		merged.AttachCoverage(c.cfg.Coverage)
	}
	c.merged = merged
	c.stale = stale
	if c.cfg.Traffic {
		c.mergeTrafficLocked()
	}
	c.gen++
}

// SeedMerge primes the merged view from shards that already hold an epoch
// result — i.e. after a restart where every shard restored its snapshot.
// Without it a restarted coordinator answers 503 on /report until the next
// flush even though each shard can already serve its last epoch, breaking
// the replay-free-restart invariant the unsharded server keeps. Best-effort:
// nodes that are unreachable or have no epoch yet are skipped, and if none
// has a result the merged view stays empty (fresh-start behaviour).
func (c *Coordinator) SeedMerge() {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	fresh := make([]bool, len(c.nodes))
	any := false
	for i, node := range c.nodes {
		res, _, err := node.Result()
		if err != nil || res == nil {
			continue
		}
		st, err := node.Stats()
		if err != nil {
			continue
		}
		var tr *WireTraffic
		if c.cfg.Traffic {
			if tr, err = node.Traffic(); err != nil {
				continue
			}
		}
		c.mergeMu.Lock()
		c.lastResults[i] = res
		c.lastStats[i] = st
		if tr != nil {
			c.lastTraffic[i] = tr
		}
		c.mergeMu.Unlock()
		fresh[i] = true
		any = true
	}
	if any {
		c.remerge(fresh)
	}
}

// Merged returns the latest merged result, its generation, and the names of
// shards whose contribution is stale (nil result, 0 before the first merge).
func (c *Coordinator) Merged() (*core.Result, int64, []string) {
	c.mergeMu.RLock()
	defer c.mergeMu.RUnlock()
	return c.merged, c.gen, c.stale
}

// MergeIsExact reports whether relation-set sharding provably reproduced a
// single batch clustering, from the configured eps (or the shards' chosen
// eps) and the largest relation set routed.
func (c *Coordinator) MergeIsExact() bool {
	eps := c.cfg.Eps
	if eps <= 0 {
		c.mergeMu.RLock()
		if c.merged != nil {
			eps = c.merged.ChosenEps
		}
		c.mergeMu.RUnlock()
	}
	if eps <= 0 {
		return false
	}
	return core.MergeExact(eps, c.router.MaxRels())
}

// MergedStats sums the per-shard pipeline statistics from the last flush.
func (c *Coordinator) MergedStats() *qlog.Stats {
	c.mergeMu.RLock()
	defer c.mergeMu.RUnlock()
	st := &qlog.Stats{}
	for _, s := range c.lastStats {
		st.Merge(s)
	}
	return st
}

// ShardStatus is one row of GET /shard/status.
type ShardStatus struct {
	Index      int    `json:"index"`
	Name       string `json:"name"`
	Down       bool   `json:"down"`
	Stale      bool   `json:"stale"`
	QueueDepth int    `json:"queue_depth"`
	Enqueued   int64  `json:"enqueued"`
	Forwarded  int64  `json:"forwarded"`
	Dropped    int64  `json:"dropped,omitempty"`
	Load       int64  `json:"routed_load"`
}

// Status snapshots every shard's routing and delivery state.
func (c *Coordinator) Status() []ShardStatus {
	loads := c.router.Loads()
	c.mergeMu.RLock()
	staleSet := make(map[string]bool, len(c.stale))
	for _, name := range c.stale {
		staleSet[name] = true
	}
	c.mergeMu.RUnlock()
	out := make([]ShardStatus, len(c.nodes))
	for i, node := range c.nodes {
		out[i] = ShardStatus{
			Index:      i,
			Name:       node.Name(),
			Down:       c.down[i].Load(),
			Stale:      staleSet[node.Name()],
			QueueDepth: len(c.queues[i]),
			Enqueued:   c.enqueued[i].Load(),
			Forwarded:  c.forwarded[i].Load(),
			Dropped:    c.dropped[i].Load(),
		}
		if i < len(loads) {
			out[i].Load = loads[i]
		}
	}
	return out
}

// Accepted and Rejected expose the coordinator's own admission counters.
func (c *Coordinator) Accepted() int64 { return c.accepted.Load() }
func (c *Coordinator) Rejected() int64 { return c.rejected.Load() }

// Retries counts forwarded-batch retries (backpressure plus failures).
func (c *Coordinator) Retries() int64 { return c.retries.Load() }

// Router exposes the router (for metrics and state persistence).
func (c *Coordinator) Router() *Router { return c.router }

// Close stops admission, binds and delivers any still-staged records, lets
// the senders deliver (or, for shards that stay down, abandon) the buffered
// backlog, stops the health loop, closes every node — LocalNodes drain and
// snapshot their embedded servers — and persists the router assignment and
// the per-shard routing offsets.
func (c *Coordinator) Close() error {
	c.ingestMu.Lock()
	if c.closed {
		c.ingestMu.Unlock()
		<-c.healthDone
		return nil
	}
	c.closed = true
	c.bindStagedLocked()
	c.ingestMu.Unlock()
	// Push the bind-time backlog into the queues as the senders free space.
	// Bounded: a shard that stays down keeps a full queue, so its backlog is
	// eventually abandoned alongside the queued records the sender drops.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.ingestMu.Lock()
		remaining := 0
		for i := range c.pending {
			c.drainPendingLocked(i)
			remaining += len(c.pending[i])
		}
		c.ingestMu.Unlock()
		if remaining == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.ingestMu.Lock()
	for i := range c.pending {
		if m := len(c.pending[i]); m > 0 {
			c.dropped[i].Add(int64(m))
			c.pending[i] = nil
		}
	}
	c.pendingN = 0
	for _, q := range c.queues {
		close(q)
	}
	c.ingestMu.Unlock()
	c.senderWG.Wait()
	close(c.stopHealth)
	<-c.healthDone
	var wg sync.WaitGroup
	errs := make([]error, len(c.nodes))
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node Node) {
			defer wg.Done()
			errs[i] = node.Close()
		}(i, node)
	}
	wg.Wait()
	if err := c.persistState(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
