// Package dbscan is a generic implementation of the DBSCAN clustering
// algorithm of Ester et al. [10], the noise-aware, k-free algorithm the
// paper uses to aggregate access areas (Section 6). It works over an
// arbitrary pairwise distance function; region queries are linear scans
// parallelised across workers, so clustering n points costs O(n²) distance
// evaluations.
package dbscan

import (
	"runtime"
	"sort"
	"sync"
)

// Noise is the label assigned to points not belonging to any cluster.
const Noise = -1

// Config holds the DBSCAN parameters.
type Config struct {
	// Eps is the neighbourhood radius.
	Eps float64
	// MinPts is the minimum neighbourhood cardinality (including the point
	// itself) for a core point.
	MinPts int
	// Workers bounds the goroutines used for region queries; 0 means
	// GOMAXPROCS.
	Workers int
	// Weights optionally assigns each point a multiplicity: deduplicated
	// access areas carry the number of raw queries they stand for, and a
	// point is a core point when the total weight of its eps-neighbourhood
	// reaches MinPts. Nil means weight 1 everywhere.
	Weights []int
}

// Result is the clustering outcome.
type Result struct {
	// Labels assigns each input index a cluster id in [0, NumClusters) or
	// Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
}

// ClusterIndices returns the member indices of each cluster.
func (r *Result) ClusterIndices() [][]int {
	out := make([][]int, r.NumClusters)
	for i, l := range r.Labels {
		if l >= 0 {
			out[l] = append(out[l], i)
		}
	}
	return out
}

// NoiseCount returns the number of noise points.
func (r *Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// Cluster runs DBSCAN over n points with the given distance function.
// dist must be symmetric; it is called concurrently from multiple
// goroutines and must be safe for concurrent use.
func Cluster(n int, dist func(i, j int) float64, cfg Config) *Result {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unclassified
	}
	e := &engine{n: n, dist: dist, cfg: cfg, labels: labels, workers: resolveWorkers(cfg.Workers, n)}
	if e.workers > 1 && n >= parallelCutoff {
		e.pool = newWorkerPool(e.workers)
		defer e.pool.close()
	}

	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unclassified {
			continue
		}
		neighbours := e.regionQuery(i)
		if e.weightOf(neighbours) < cfg.MinPts {
			labels[i] = Noise
			continue
		}
		e.expand(i, neighbours, clusterID)
		clusterID++
	}
	return &Result{Labels: labels, NumClusters: clusterID}
}

const unclassified = -2

// resolveWorkers clamps a Workers setting to [1, n] with 0 meaning
// GOMAXPROCS.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// weightOf sums the weights of a neighbourhood (cardinality when no weights
// are configured).
func (e *engine) weightOf(idx []int) int {
	if e.cfg.Weights == nil {
		return len(idx)
	}
	total := 0
	for _, i := range idx {
		total += e.cfg.Weights[i]
	}
	return total
}

type engine struct {
	n       int
	dist    func(i, j int) float64
	cfg     Config
	labels  []int
	workers int
	// pool, when non-nil, is the persistent per-Cluster-call worker pool
	// parallel region queries run on. DBSCAN issues one region query per
	// point; spawning `workers` fresh goroutines inside each (the previous
	// design) meant n·workers goroutine launches per clustering run —
	// billions at the 1M-area scale. The pool starts its goroutines once.
	pool *workerPool
}

// workerPool is a fixed set of goroutines consuming closures from a
// channel. Submitters never run tasks inline and tasks never submit,
// so there is no nesting deadlock; close() tears the goroutines down.
type workerPool struct {
	tasks chan func()
	done  sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan func(), workers)}
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.done.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

func (p *workerPool) close() {
	close(p.tasks)
	p.done.Wait()
}

// runChunks splits [0, n) into one chunk per worker and executes
// fn(w, lo, hi) for each on the pool, blocking until all complete.
func (p *workerPool) runChunks(n, workers int, fn func(w, lo, hi int)) {
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		w, lo, hi := w, lo, hi
		p.tasks <- func() {
			defer wg.Done()
			fn(w, lo, hi)
		}
	}
	wg.Wait()
}

// regionQuery returns all points within Eps of point i (including i),
// scanning in parallel on the engine's worker pool.
func (e *engine) regionQuery(i int) []int {
	sp := regionQueryStage.Start()
	defer sp.End()
	regionQueriesTotal.Inc()
	if e.pool == nil || e.workers == 1 || e.n < parallelCutoff {
		var out []int
		for j := 0; j < e.n; j++ {
			if j == i || e.dist(i, j) <= e.cfg.Eps {
				out = append(out, j)
			}
		}
		return out
	}
	parts := make([][]int, e.workers)
	e.pool.runChunks(e.n, e.workers, func(w, lo, hi int) {
		var out []int
		for j := lo; j < hi; j++ {
			if j == i || e.dist(i, j) <= e.cfg.Eps {
				out = append(out, j)
			}
		}
		parts[w] = out
	})
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// expand grows cluster id from core point i using the classic seed-set
// expansion.
func (e *engine) expand(i int, seeds []int, id int) {
	e.labels[i] = id
	queue := make([]int, 0, len(seeds))
	for _, j := range seeds {
		if j != i {
			queue = append(queue, j)
		}
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		switch e.labels[j] {
		case Noise:
			e.labels[j] = id // border point
			continue
		case unclassified:
			e.labels[j] = id
		default:
			continue // already in a cluster
		}
		neighbours := e.regionQuery(j)
		if e.weightOf(neighbours) >= e.cfg.MinPts {
			for _, k := range neighbours {
				if e.labels[k] == unclassified || e.labels[k] == Noise {
					queue = append(queue, k)
				}
			}
		}
	}
}

// KDistances returns the distance of every point to its k-th nearest
// neighbour, sorted descending — the eps-selection heuristic from the
// original DBSCAN paper [10]: plot the curve and pick eps at the "knee".
// dist must be symmetric; the computation is O(n²) like the clustering
// itself.
// k is clamped to [1, n−1] (a point has only n−1 neighbours); n ≤ 1 has no
// neighbour distances at all and yields an empty curve.
func KDistances(n int, dist func(i, j int) float64, k int) []float64 {
	if n <= 1 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	out := make([]float64, 0, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row = append(row, dist(i, j))
		}
		sort.Float64s(row)
		out = append(out, row[k-1])
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// SuggestEps picks an eps from the k-distance curve using the maximum-
// curvature ("knee") point: the index maximising the distance drop relative
// to its neighbours. On curves without a genuine cliff no interior drop
// stands out — the old behaviour then returned the head of the descending
// curve (the LARGEST k-distance, turning almost everything into one
// cluster) — so a knee only counts when its window concentrates both well
// more than a linear curve's share of the descent AND a solid fraction of
// the total descent; the latter keeps the noisy head of a smooth convex
// curve (uniform data has steep extreme-value gaps up top) from posing as
// a knee. Otherwise a small quantile of the curve is returned, leaving
// roughly the top decile as noise. It is a pragmatic default, not a
// replacement for looking at the curve.
func SuggestEps(kdist []float64) float64 {
	if len(kdist) == 0 {
		return 0
	}
	if len(kdist) < 3 {
		return kdist[len(kdist)-1]
	}
	bestIdx, bestDrop := -1, 0.0
	for i := 1; i < len(kdist)-1; i++ {
		drop := kdist[i-1] - kdist[i+1]
		if drop > bestDrop {
			bestDrop = drop
			bestIdx = i
		}
	}
	total := kdist[0] - kdist[len(kdist)-1]
	// Each drop spans a window of 2 steps; on a perfectly linear curve every
	// drop equals 2·total/(len-1).
	linearDrop := 2 * total / float64(len(kdist)-1)
	if bestIdx < 0 || total <= 0 || bestDrop <= 1.5*linearDrop || bestDrop <= 0.25*total {
		return kdist[(len(kdist)-1)*9/10]
	}
	return kdist[bestIdx]
}

// PivotIndex accelerates region queries via the triangle inequality
// (LAESA): with precomputed distances from every point to a handful of
// pivots, a candidate x can be skipped when |d(q,p) − d(x,p)| > eps + Slack
// for any pivot p, without evaluating d(q,x). With Slack 0 the pruning is
// exact ONLY for a true metric; the endpoint d_pred mode is one, but the
// min-matching d_conj aggregation above it is merely near-metric — the
// min-matching can pair a clause with different partners on the two sides
// of a triple, so |d(q,p) − d(x,p)| can exceed d(q,x). Measured on the 20k
// default-mix workload the overshoot stays under 2·d(q,x) pair for pair,
// which is what the PivotSlackFactor margin used by ClusterWithPivots
// absorbs (see that constructor).
type PivotIndex struct {
	dist   func(i, j int) float64
	pivots []int
	table  [][]float64 // table[k][i] = d(pivots[k], i)

	// Slack widens the pruning threshold to eps + Slack. Zero (the
	// constructor default) gives classic LAESA pruning, exact for metrics.
	Slack float64
}

// NewPivotIndex precomputes k pivot rows over n points. Pivots are chosen
// greedily (farthest-point) starting from index 0, which spreads them well
// for clustering workloads.
func NewPivotIndex(n int, dist func(i, j int) float64, k int) *PivotIndex {
	return NewPivotIndexParallel(n, dist, k, 1)
}

// NewPivotIndexParallel is NewPivotIndex with the per-pivot row computation
// spread across workers; dist must then be safe for concurrent use.
func NewPivotIndexParallel(n int, dist func(i, j int) float64, k, workers int) *PivotIndex {
	sp := pivotBuildStage.Start()
	defer sp.End()
	pivotBuildsTotal.Inc()
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	workers = resolveWorkers(workers, n)
	idx := &PivotIndex{dist: dist}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = 1e308
	}
	next := 0
	for len(idx.pivots) < k {
		idx.pivots = append(idx.pivots, next)
		row := make([]float64, n)
		fill := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row[i] = dist(next, i)
				if row[i] < minDist[i] {
					minDist[i] = row[i]
				}
			}
		}
		if workers == 1 || n < parallelCutoff {
			fill(0, n)
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					fill(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
		idx.table = append(idx.table, row)
		// Farthest point from all chosen pivots becomes the next pivot.
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if bestD == 0 {
			break
		}
		next = best
	}
	return idx
}

// parallelCutoff is the point count below which region queries and pivot
// rows stay single-threaded (goroutine overhead dominates under it).
const parallelCutoff = 2048

// N returns the number of points the index currently covers.
func (ix *PivotIndex) N() int {
	if len(ix.table) == 0 {
		return 0
	}
	return len(ix.table[0])
}

// Pivots returns the number of pivot rows.
func (ix *PivotIndex) Pivots() int { return len(ix.pivots) }

// Extend grows the index to cover points [N(), n): each pivot row gains the
// distances to the new points only, so an epoch that appends k points to an
// already-indexed set costs k·pivots evaluations instead of a full rebuild.
// The pivot SET stays fixed — pruning correctness never depends on pivot
// choice, only its effectiveness does, so callers should rebuild once the
// set has grown far past the size the pivots were chosen for (the
// incremental miner rebuilds at 2×; through its cross-epoch distance cache
// a rebuild re-evaluates nothing already known).
//
// dist replaces the stored distance function for subsequent region queries;
// it must agree with the original on the already-covered prefix (the
// incremental miner's partition-local closures do: partition membership is
// append-only, so local indices are stable).
func (ix *PivotIndex) Extend(n int, dist func(i, j int) float64) {
	ix.dist = dist
	old := ix.N()
	if n <= old {
		return
	}
	pivotExtendsTotal.Inc()
	for k, p := range ix.pivots {
		row := ix.table[k]
		for i := old; i < n; i++ {
			row = append(row, dist(p, i))
		}
		ix.table[k] = row
	}
}

// Region returns all points within eps of q (including q), using pivot
// pruning to avoid most distance evaluations.
func (ix *PivotIndex) Region(q int, eps float64, n int) []int {
	sp := pivotRegionStage.Start()
	defer sp.End()
	pivotRegionsTotal.Inc()
	return ix.regionRange(q, eps, 0, n, nil)
}

// RegionParallel is Region with the candidate scan split across workers.
// The result is in ascending index order like Region's. Each call spawns
// its own goroutines; the clustering drivers use regionPooled instead.
func (ix *PivotIndex) RegionParallel(q int, eps float64, n, workers int) []int {
	workers = resolveWorkers(workers, n)
	if workers == 1 || n < parallelCutoff {
		return ix.Region(q, eps, n)
	}
	pool := newWorkerPool(workers)
	defer pool.close()
	return ix.regionPooled(q, eps, n, workers, pool)
}

// regionPooled is the pooled candidate scan behind RegionParallel and
// ClusterWithIndex; pool may be nil for a serial scan.
func (ix *PivotIndex) regionPooled(q int, eps float64, n, workers int, pool *workerPool) []int {
	if pool == nil || workers == 1 || n < parallelCutoff {
		return ix.Region(q, eps, n)
	}
	sp := pivotRegionStage.Start()
	defer sp.End()
	pivotRegionsTotal.Inc()
	parts := make([][]int, workers)
	pool.runChunks(n, workers, func(w, lo, hi int) {
		parts[w] = ix.regionRange(q, eps, lo, hi, nil)
	})
	var out []int
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// regionRange scans candidates in [lo, hi), appending matches to out.
func (ix *PivotIndex) regionRange(q int, eps float64, lo, hi int, out []int) []int {
candidates:
	for j := lo; j < hi; j++ {
		if j == q {
			out = append(out, j)
			continue
		}
		for k := range ix.pivots {
			diff := ix.table[k][q] - ix.table[k][j]
			if diff < 0 {
				diff = -diff
			}
			if diff > eps+ix.Slack {
				continue candidates
			}
		}
		if ix.dist(q, j) <= eps {
			out = append(out, j)
		}
	}
	return out
}

// PivotSlackFactor is the near-metric safety margin ClusterWithPivots adds
// to the pruning threshold: a candidate is skipped only when the pivot gap
// exceeds (1+PivotSlackFactor)·eps. The endpoint-mode distance violates the
// triangle inequality by at most ~2× the pair distance on the measured
// workloads (the min-matching clause assignment can flip between the two
// sides of a triple), so a 2·eps margin keeps the pruning lossless for
// eps-close pairs while still discarding ~79% of the far candidates, whose
// pivot gaps are dominated by cross-column structure and sit near 1.
const PivotSlackFactor = 2.0

// ClusterWithPivots runs DBSCAN using a pivot index for region queries,
// honouring cfg.Workers for both index construction and the pruned scans.
// The pruning threshold carries the PivotSlackFactor margin, so the labels
// match brute-force Cluster exactly for metric and near-metric distances
// whose triangle defect stays under PivotSlackFactor·d; see PivotIndex.
func ClusterWithPivots(n int, dist func(i, j int) float64, cfg Config, pivots int) *Result {
	if n == 0 {
		return &Result{Labels: []int{}}
	}
	ix := NewPivotIndexParallel(n, dist, pivots, resolveWorkers(cfg.Workers, n))
	return ClusterWithIndex(n, dist, cfg, ix)
}

// ClusterWithIndex is ClusterWithPivots over a caller-supplied pivot index,
// letting the epoch-based incremental miner reuse (and Extend) one index
// across re-clustering epochs instead of rebuilding it. The index must
// cover at least n points; its Slack is set to PivotSlackFactor·Eps for
// this run, and its stored distance function is replaced by dist.
func ClusterWithIndex(n int, dist func(i, j int) float64, cfg Config, ix *PivotIndex) *Result {
	if n == 0 {
		return &Result{Labels: []int{}}
	}
	workers := resolveWorkers(cfg.Workers, n)
	ix.dist = dist
	ix.Slack = PivotSlackFactor * cfg.Eps
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unclassified
	}
	e := &engine{n: n, dist: dist, cfg: cfg, labels: labels, workers: workers}
	if workers > 1 && n >= parallelCutoff {
		e.pool = newWorkerPool(workers)
		defer e.pool.close()
	}
	region := func(i int) []int { return ix.regionPooled(i, cfg.Eps, n, workers, e.pool) }

	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unclassified {
			continue
		}
		neighbours := region(i)
		if e.weightOf(neighbours) < cfg.MinPts {
			labels[i] = Noise
			continue
		}
		e.expandWith(i, neighbours, clusterID, region)
		clusterID++
	}
	return &Result{Labels: labels, NumClusters: clusterID}
}

// expandWith is expand with a pluggable region query.
func (e *engine) expandWith(i int, seeds []int, id int, region func(int) []int) {
	e.labels[i] = id
	queue := make([]int, 0, len(seeds))
	for _, j := range seeds {
		if j != i {
			queue = append(queue, j)
		}
	}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		switch e.labels[j] {
		case Noise:
			e.labels[j] = id
			continue
		case unclassified:
			e.labels[j] = id
		default:
			continue
		}
		neighbours := region(j)
		if e.weightOf(neighbours) >= e.cfg.MinPts {
			for _, k := range neighbours {
				if e.labels[k] == unclassified || e.labels[k] == Noise {
					queue = append(queue, k)
				}
			}
		}
	}
}
