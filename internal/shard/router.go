package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// Router maps each ingested record to the shard that owns its relation set.
//
// The key insight is that routing reuses the serve layer's template cache:
// a statement shape's FROM clause is literal-independent, so once any record
// of a fingerprint class has been extracted, every later record of the class
// routes on the cached template's precomputed RouteKey — a fingerprint plus
// one map lookup, no parse. Cache misses pay one full parse and WARM the
// cache (in the in-process topology the very cache the owning shard's
// pipeline reads, so the shard then rebinds from the template instead of
// re-parsing).
//
// Relation-set keys bind to shards in two phases. Binding a key the moment
// it is first seen is blind — every heavy key appears within the first few
// hundred records, before per-shard loads say anything — and blind binding
// measurably co-locates heavy keys (49% max work share at 4 shards on the
// synthetic 20k workload vs the 27% optimum). So the router STAGES instead:
// during warmup (the first Config-set number of area-bearing records) Route
// returns ShardStaged and only counts the key's records; when the horizon is
// reached, BindAll packs the staged keys onto shards greedily in descending
// observed-count order — on a stationary workload the warmup counts are rate
// estimates, so this reproduces near-optimal bin packing. Keys first seen
// after warmup bind immediately to the least-loaded shard (by routed-record
// load); on this side of the horizon they are dust. The caller (the
// coordinator) buffers staged records per key and flushes each key's buffer
// to its shard at bind time, which preserves per-key record order — the
// property cluster-exactness actually needs.
//
// Every binding is sticky (exactness depends on one shard owning each key)
// and survives restarts via SaveState/LoadState — re-deriving it from a
// different arrival order after a restart would strand each shard's restored
// areas under newly re-routed keys and double-count them. A restored router
// skips warmup: restored keys route immediately, novel keys bind
// least-loaded.
//
// Records that yield no access area (parse failures, non-SELECTs, failed
// extractions) only bump per-shard pipeline counters, which merge
// commutatively, so they are spread by fingerprint hash and excluded from
// the load balance.
type Router struct {
	n      int
	cache  *extract.TemplateCache
	ex     *extract.Extractor
	warmup int

	mu      sync.Mutex
	assign  map[string]int
	load    []int64
	maxRels int
	staged  map[string]int64 // per-key record counts while unbound
	warmed  int64            // area-bearing records routed during warmup
	binding bool             // warmup horizon crossed, BindAll not yet called

	routed     atomic.Int64
	routeNanos atomic.Int64
	fullParses atomic.Int64
}

// ShardStaged is Route's answer while the record's key is still unbound
// during warmup: the caller must buffer the record per key and deliver the
// buffer when BindAll assigns the key.
const ShardStaged = -1

// DefaultWarmup is the staging horizon (area-bearing records) when
// NewRouter's warmup argument is 0.
const DefaultWarmup = 1024

// NewRouter builds a router over n shards. cache may be shared with
// in-process shard servers (see serve.Config.Templates) or private in the
// multi-node topology. The router's extractor deliberately carries NO stats
// registry: value observation is the owning shard's job, and in the shared
// in-process registry it must happen exactly once per record.
//
// warmup is the staging horizon in area-bearing records: 0 means
// DefaultWarmup, negative disables staging (every key binds least-loaded the
// moment it is first seen — the blind policy, kept for single-shard routers
// where packing is moot).
func NewRouter(n int, sch *schema.Schema, predCap int, cache *extract.TemplateCache, warmup int) *Router {
	if n < 1 {
		n = 1
	}
	if cache == nil {
		cache = &extract.TemplateCache{}
	}
	switch {
	case warmup == 0:
		warmup = DefaultWarmup
	case warmup < 0:
		warmup = 0
	}
	if n == 1 {
		// One shard: nothing to pack, don't make the caller buffer.
		warmup = 0
	}
	return &Router{
		n:      n,
		cache:  cache,
		ex:     &extract.Extractor{Schema: sch, PredCap: predCap, Stats: nil},
		warmup: warmup,
		assign: make(map[string]int),
		load:   make([]int64, n),
		staged: make(map[string]int64),
	}
}

// Cache exposes the template cache so in-process shard servers can share it.
func (r *Router) Cache() *extract.TemplateCache { return r.cache }

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Route returns the shard index (0..n-1) that owns rec, plus the record's
// relation-set key ("" when the record carries no area and was spread by
// hash). During warmup the shard is ShardStaged: the caller must buffer the
// record under the returned key and deliver the buffer when BindAll assigns
// it (see the type comment).
func (r *Router) Route(rec qlog.Record) (int, string) {
	t0 := time.Now()
	defer func() {
		r.routeNanos.Add(time.Since(t0).Nanoseconds())
		r.routed.Add(1)
	}()
	fp, lits, ferr := sqlparser.Fingerprint(rec.SQL)
	if ferr != nil {
		// Lexically broken statement: counter-only, any shard. Hash the text
		// itself so the choice is deterministic for a given record.
		h := fnv.New64a()
		_, _ = h.Write([]byte(rec.SQL))
		return int(h.Sum64() % uint64(r.n)), ""
	}
	if t, ok := r.cache.Get(fp); ok {
		if key := t.RouteKey(); key != "" {
			return r.byKey(key), key
		}
		return int(fp % uint64(r.n)), ""
	}
	// Cache miss: one full parse + template extraction, cached for both the
	// rest of the class's routing and the owning shard's rebind path.
	r.fullParses.Add(1)
	stmt, err := sqlparser.Parse(rec.SQL)
	if err != nil {
		// Leave classification (and caching) to the shard's slow path so the
		// failure-category logic lives in exactly one place.
		return int(fp % uint64(r.n)), ""
	}
	sel, ok := stmt.(*sqlparser.SelectStatement)
	if !ok {
		return int(fp % uint64(r.n)), ""
	}
	area, _, tmpl, xerr := r.ex.ExtractTemplate(sel)
	if !anyBadNum(lits) {
		// Mirror the pipeline's badnum rule: a statement whose literals
		// overflowed float64 parsing must not seed the class template.
		r.cache.Put(fp, tmpl)
	}
	if xerr != nil || area == nil || len(area.Relations) == 0 {
		return int(fp % uint64(r.n)), ""
	}
	key := extract.RelationSetKey(area.Relations)
	return r.byKey(key), key
}

func anyBadNum(lits []sqlparser.Literal) bool {
	for _, l := range lits {
		if l.BadNum {
			return true
		}
	}
	return false
}

// byKey resolves the sticky assignment for one relation-set key, staging the
// record when the key is still unbound during warmup, and charges bound
// records to the owner's load.
func (r *Router) byKey(key string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Relation names are normalised identifiers (no commas), so the key's
	// comma count recovers the set size for the MergeExact guard.
	if rels := strings.Count(key, ",") + 1; rels > r.maxRels {
		r.maxRels = rels
	}
	if shardIdx, ok := r.assign[key]; ok {
		r.load[shardIdx]++
		return shardIdx
	}
	if r.warmup > 0 && r.warmed < int64(r.warmup) {
		r.staged[key]++
		r.warmed++
		if r.warmed >= int64(r.warmup) {
			r.binding = true
		}
		return ShardStaged
	}
	shardIdx := r.leastLoadedLocked()
	r.assign[key] = shardIdx
	r.load[shardIdx]++
	return shardIdx
}

// leastLoadedLocked picks the shard with the fewest routed records; caller
// holds r.mu.
func (r *Router) leastLoadedLocked() int {
	shardIdx := 0
	for i := 1; i < r.n; i++ {
		if r.load[i] < r.load[shardIdx] {
			shardIdx = i
		}
	}
	return shardIdx
}

// NeedsBind reports whether the warmup horizon has been crossed and BindAll
// has not yet run. The coordinator checks it after every staged Route;
// Flush/Close call BindAll unconditionally so staged buffers never outlive a
// run that ends short of the horizon.
func (r *Router) NeedsBind() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.binding
}

// BindAll ends warmup: the staged keys are packed onto shards greedily in
// descending observed-count order (ties broken by key, so the packing is
// deterministic for a given workload), each shard's load is charged with the
// staged records, and the new key→shard assignments are returned so the
// caller can deliver each key's buffered records to its owner. After BindAll
// the router never stages again — unseen keys bind least-loaded on sight.
func (r *Router) BindAll() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.warmup = 0
	r.binding = false
	if len(r.staged) == 0 {
		return nil
	}
	keys := make([]string, 0, len(r.staged))
	for k := range r.staged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if r.staged[keys[i]] != r.staged[keys[j]] {
			return r.staged[keys[i]] > r.staged[keys[j]]
		}
		return keys[i] < keys[j]
	})
	bound := make(map[string]int, len(keys))
	for _, k := range keys {
		shardIdx := r.leastLoadedLocked()
		r.assign[k] = shardIdx
		r.load[shardIdx] += r.staged[k]
		bound[k] = shardIdx
	}
	r.staged = make(map[string]int64)
	return bound
}

// MaxRels returns the largest relation-set size routed so far — the
// maxTables input to core.MergeExact.
func (r *Router) MaxRels() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxRels
}

// Loads returns a copy of the per-shard routed-record loads.
func (r *Router) Loads() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.load))
	copy(out, r.load)
	return out
}

// Routed returns the total records routed; RouteNanos the cumulative time
// spent inside Route — together they quantify routing overhead.
func (r *Router) Routed() int64     { return r.routed.Load() }
func (r *Router) RouteNanos() int64 { return r.routeNanos.Load() }

// FullParses returns how many cache misses paid a full parse in the router.
func (r *Router) FullParses() int64 { return r.fullParses.Load() }

// routerState is the persisted assignment (JSON: small, diffable, and the
// shard count is checked on restore).
type routerState struct {
	Shards  int            `json:"shards"`
	Assign  map[string]int `json:"assign"`
	Load    []int64        `json:"load"`
	MaxRels int            `json:"max_rels"`
}

// SaveState atomically persists the sticky key→shard assignment next to the
// shards' snapshots, so a restarted coordinator keeps routing every restored
// area's key to the shard that already holds it.
func (r *Router) SaveState(path string) error {
	r.mu.Lock()
	st := routerState{Shards: r.n, Assign: make(map[string]int, len(r.assign)), Load: make([]int64, len(r.load)), MaxRels: r.maxRels}
	for k, v := range r.assign {
		st.Assign[k] = v
	}
	copy(st.Load, r.load)
	r.mu.Unlock()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadState restores a saved assignment. A missing file is not an error (a
// cold start); a shard-count mismatch is (re-routing restored keys would
// silently double-count their areas).
func (r *Router) LoadState(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var st routerState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.Shards != r.n {
		return fmt.Errorf("shard: router state was saved for %d shards, running %d", st.Shards, r.n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.assign = st.Assign
	if r.assign == nil {
		r.assign = make(map[string]int)
	}
	if len(st.Load) == r.n {
		copy(r.load, st.Load)
	}
	r.maxRels = st.MaxRels
	// A restored router skips warmup: the restored keys must route to their
	// owners immediately, and staging novel keys against a mature load vector
	// would buy nothing.
	r.warmup = 0
	r.binding = false
	return nil
}
