package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/memdb"
	"repro/internal/olapclus"
	"repro/internal/qlog"
	"repro/internal/requery"
	"repro/internal/sqlparser"
)

// OLAPClusResult is E6's outcome: cluster counts under exact matching vs
// our method, per equality-heavy population.
type OLAPClusResult struct {
	OursClusters  int
	ExactClusters int
	Distinct      int
	Report        string
}

// RunOLAPClusExact executes E6 (Section 6.4): the population of our Cluster
// 1 ("Photoz.objid = c") yields one cluster under the overlap distance and
// approximately one cluster per distinct constant under exact matching.
func (e *Env) RunOLAPClusExact() *OLAPClusResult {
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	// Collect the cluster-1 population from the log.
	byKey := map[string]*weightedArea{}
	var order []string
	for _, entry := range e.Entries {
		if entry.Template != "cluster01" {
			continue
		}
		area, err := ex.ExtractSQL(entry.SQL)
		if err != nil {
			continue
		}
		k := area.Key()
		wa, ok := byKey[k]
		if !ok {
			wa = &weightedArea{area: area}
			byKey[k] = wa
			order = append(order, k)
		}
		wa.weight++
	}
	areas := make([]*extract.AccessArea, 0, len(order))
	weights := make([]int, 0, len(order))
	for _, k := range order {
		areas = append(areas, byKey[k].area)
		weights = append(weights, byKey[k].weight)
	}
	metric := &distance.Metric{Stats: e.Stats}
	ours := olapclus.ClusterRawConj(areas, weights, metric, 0.06, 8)
	exact := olapclus.ClusterExact(areas, weights, 0.1, 1)

	var b strings.Builder
	fmt.Fprintf(&b, "E6 / §6.4 OLAPClus with exact predicate matching (Cluster-1 population)\n")
	fmt.Fprintf(&b, "paper: our method 1 cluster, OLAPClus ≈ 100,000 clusters\n")
	fmt.Fprintf(&b, "ours:  our method %d cluster(s), exact matching %d clusters over %d distinct constants\n",
		ours.NumClusters, exact.NumClusters, len(areas))
	return &OLAPClusResult{
		OursClusters: ours.NumClusters, ExactClusters: exact.NumClusters,
		Distinct: len(areas), Report: b.String(),
	}
}

type weightedArea struct {
	area   *extract.AccessArea
	weight int
}

// RawBreakResult is E7's outcome: per ground-truth template, whether the
// raw-predicate hybrid keeps the population in one cluster.
type RawBreakResult struct {
	// Broken lists templates whose population fragments (or drops to noise)
	// under raw predicates while staying unified under the exact mapping.
	Broken []string
	Report string
}

// RunOLAPClusRaw executes E7 (Section 6.5): clustering raw predicates with
// d_conj breaks the clusters that rely on the Section 4.2-4.4
// transformations.
func (e *Env) RunOLAPClusRaw() *RawBreakResult {
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	metric := &distance.Metric{Stats: e.Stats}
	// The templates the paper reports as broken all mix plain and
	// transformed forms.
	candidates := []string{"cluster02", "cluster03", "cluster05", "cluster09",
		"cluster19", "cluster20", "cluster21"}
	var broken []string
	var b strings.Builder
	fmt.Fprintf(&b, "E7 / §6.5 OLAPClus with d_conj on RAW predicates\n")
	fmt.Fprintf(&b, "paper: breaks Clusters 2, 5, 8, 9, 11, 12, 18, 19, 20, 22\n")
	for _, tpl := range candidates {
		mapped, rawAreas, weights := e.collectBoth(ex, tpl)
		if len(mapped) < 8 {
			continue
		}
		oursRes := olapclus.ClusterRawConj(mapped, weights, metric, 0.06, 8)
		rawRes := olapclus.ClusterRawConj(rawAreas, weights, metric, 0.06, 8)
		ok := oursRes.NumClusters == 1
		breaks := rawRes.NumClusters != 1 || rawRes.NoiseCount() > len(rawAreas)/5
		status := "intact"
		if breaks {
			status = "BROKEN"
			broken = append(broken, tpl)
		}
		fmt.Fprintf(&b, "  %s: mapped %d cluster(s) [unified=%v], raw %d cluster(s) + %d noise -> %s\n",
			tpl, oursRes.NumClusters, ok, rawRes.NumClusters, rawRes.NoiseCount(), status)
	}
	fmt.Fprintf(&b, "broken templates: %d of %d candidates\n", len(broken), len(candidates))
	res := &RawBreakResult{Broken: broken}
	res.Report = b.String()
	return res
}

// collectBoth extracts one template's population both ways.
func (e *Env) collectBoth(ex *extract.Extractor, tpl string) (mapped, raw []*extract.AccessArea, weights []int) {
	type pair struct {
		m, r   *extract.AccessArea
		weight int
	}
	byKey := map[string]*pair{}
	var order []string
	for _, entry := range e.Entries {
		if entry.Template != tpl {
			continue
		}
		m, err := ex.ExtractSQL(entry.SQL)
		if err != nil {
			continue
		}
		r, err := olapclus.RawAreaSQL(e.Schema, entry.SQL)
		if err != nil {
			continue
		}
		// Dedupe on the raw key so both clusterings see the same points.
		k := r.Key()
		p, ok := byKey[k]
		if !ok {
			p = &pair{m: m, r: r}
			byKey[k] = p
			order = append(order, k)
		}
		p.weight++
	}
	for _, k := range order {
		p := byKey[k]
		mapped = append(mapped, p.m)
		raw = append(raw, p.r)
		weights = append(weights, p.weight)
	}
	return mapped, raw, weights
}

// EfficiencyResult is E8's outcome.
type EfficiencyResult struct {
	Stats      *qlog.Stats
	Throughput float64 // queries per second
	Report     string
}

// RunEfficiency executes E8 (Section 6.6): end-to-end throughput and the
// per-stage min/max timings.
func (e *Env) RunEfficiency() *EfficiencyResult {
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	// Single-threaded like the paper's i5-750 run, and with the template
	// cache off: the §6.6 report is about per-statement parse/CNF/consolidate
	// cost, which a cache hit would replace with near-zero rebind times.
	p := &qlog.Pipeline{Extractor: ex, Workers: 1, NoCache: true}
	start := time.Now()
	_, st := p.Run(e.Records)
	elapsed := time.Since(start)
	qps := float64(st.Total) / elapsed.Seconds()

	var b strings.Builder
	fmt.Fprintf(&b, "E8 / §6.6 efficiency (single worker, %d queries)\n", st.Total)
	fmt.Fprintf(&b, "paper: 100,000 queries in ~45 s (Intel i5-750) = ~2,200 q/s\n")
	fmt.Fprintf(&b, "ours:  %d queries in %v = %.0f q/s\n", st.Total, elapsed.Round(time.Millisecond), qps)
	fmt.Fprintf(&b, "stage ranges (paper: parse <1-94 ms, extract <1-1333 ms, CNF <1 ms-unbounded, consolidate <1-95 ms):\n")
	stage := func(name string, s qlog.StageTime) {
		fmt.Fprintf(&b, "  %-12s min %-10v max %-12v mean %v\n", name, s.Min, s.Max, s.Mean())
	}
	stage("parse", st.Parse)
	stage("extract", st.Extract)
	stage("cnf", st.CNF)
	stage("consolidate", st.Consolidate)
	fmt.Fprintf(&b, "queries hitting the 35-predicate cap: %d\n", st.Truncated)
	return &EfficiencyResult{Stats: st, Throughput: qps, Report: b.String()}
}

// RequeryResult is E9's outcome.
type RequeryResult struct {
	ExtractElapsed time.Duration
	RequeryElapsed time.Duration
	Speedup        float64
	ExtractedCount int
	RequeryCount   int
	EmptyResults   int
	Errors         map[string]int
	Report         string
}

// RunRequery executes E9 (Sections 2.2/6.6): the re-issuing baseline against
// the database vs log-side extraction.
func (e *Env) RunRequery() *RequeryResult {
	db := e.DB
	// Extraction side.
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	p := &qlog.Pipeline{Extractor: ex, Workers: 1}
	start := time.Now()
	areas, st := p.Run(e.Records)
	extractElapsed := time.Since(start)

	// Re-query side, with SkyServer's operational constraints.
	base := &requery.Baseline{
		DB:          db,
		RowLimit:    500000,
		RateLimiter: memdb.NewRateLimiter(60),
		StrictTSQL:  true,
	}
	rqRes := base.Run(e.Records)

	speedup := rqRes.Elapsed.Seconds() / extractElapsed.Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, "E9 / §6.6 re-querying baseline (%d queries)\n", len(e.Records))
	fmt.Fprintf(&b, "paper: re-issuing is orders of magnitude slower; misses clusters 18-24; fails on 1,220,358 error queries\n")
	fmt.Fprintf(&b, "extraction: %d areas in %v\n", len(areas), extractElapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "re-query:   %d areas in %v (%.1fx slower)\n", rqRes.Processed(), rqRes.Elapsed.Round(time.Millisecond), speedup)
	fmt.Fprintf(&b, "re-query empty result sets (intended areas lost): %d\n", rqRes.EmptyResults)
	var kinds []string
	for k := range rqRes.Errors {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "re-query errors (%s): %d\n", k, rqRes.Errors[k])
	}
	fmt.Fprintf(&b, "extraction handled %d statements re-querying could not\n",
		len(areas)-rqRes.Processed())
	_ = st
	return &RequeryResult{
		ExtractElapsed: extractElapsed, RequeryElapsed: rqRes.Elapsed, Speedup: speedup,
		ExtractedCount: len(areas), RequeryCount: rqRes.Processed(),
		EmptyResults: rqRes.EmptyResults, Errors: rqRes.Errors, Report: b.String(),
	}
}

// AblationResult is E10's outcome.
type AblationResult struct {
	EndpointMatched int
	LiteralMatched  int
	Report          string
}

// RunAblation executes E10: Table-1 recovery under the corrected endpoint
// d_pred vs the paper-literal formula (DESIGN.md §2).
func (e *Env) RunAblation() *AblationResult {
	run := func(mode distance.Mode, eps float64) int {
		m := core.NewMiner(core.Config{Schema: e.Schema, Stats: e.Stats, Mode: mode, Eps: eps})
		res := m.MineRecords(e.Records)
		matched := 0
		for _, row := range paperTable1() {
			if matchCluster(res, row) != nil {
				matched++
			}
		}
		return matched
	}
	endpoint := run(distance.ModeEndpoint, 0.06)
	literal := run(distance.ModePaperLiteral, 0.05)
	var b strings.Builder
	fmt.Fprintf(&b, "E10 / ablation: d_pred mode (DESIGN.md §2)\n")
	fmt.Fprintf(&b, "endpoint mode (default): %d/24 paper clusters recovered\n", endpoint)
	fmt.Fprintf(&b, "paper-literal mode:      %d/24 paper clusters recovered\n", literal)
	return &AblationResult{EndpointMatched: endpoint, LiteralMatched: literal, Report: b.String()}
}

// ParseSanity double-checks that the famous §6.6 MySQL-dialect example
// extracts (used by tests and the report header).
func ParseSanity() error {
	_, err := sqlparser.ParseSelect("SELECT Galaxies.objid FROM Galaxies LIMIT 10")
	return err
}

// SigmaAblationResult compares the aggregated Cluster-1 box width with and
// without the 3σ trimming rule of Section 6.2.
type SigmaAblationResult struct {
	TrimmedWidth   float64
	UntrimmedWidth float64
	WindowWidth    float64
	Report         string
}

// RunAblationSigma executes the 3σ-rule ablation: without trimming, stray
// constants inflate the aggregated box ("we leave out extreme range bounds
// ... to ensure the robustness of the results").
func (e *Env) RunAblationSigma() *SigmaAblationResult {
	run := func(sigma float64) float64 {
		m := core.NewMiner(core.Config{Schema: e.Schema, Stats: e.Stats, SigmaRule: sigma})
		res := m.MineRecords(e.Records)
		row := paperTable1()[0] // Cluster 1
		c := matchCluster(res, row)
		if c == nil {
			return 0
		}
		return c.Box.Get(row.column).Width()
	}
	trimmed := run(3)
	untrimmed := run(-1)
	window := paperTable1()[0].window.Width()
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation / §6.2 3σ trimming (Cluster-1 box width vs ground-truth window %.3g)\n", window)
	fmt.Fprintf(&b, "with 3σ rule:    %.4g (%.2fx window)\n", trimmed, trimmed/window)
	fmt.Fprintf(&b, "without:         %.4g (%.2fx window)\n", untrimmed, untrimmed/window)
	return &SigmaAblationResult{TrimmedWidth: trimmed, UntrimmedWidth: untrimmed,
		WindowWidth: window, Report: b.String()}
}

// DensityResult reports per-cluster density contrast — the §6.3 follow-up
// ("how much denser each cluster is, in contrast to its immediate
// surroundings").
type DensityResult struct {
	Contrasts map[int]float64 // cluster ID -> contrast
	Report    string
}

// RunDensity mines the log and computes the density contrast of each
// recovered Table-1 cluster.
func (e *Env) RunDensity() *DensityResult {
	miner := e.Miner()
	res := miner.MineRecords(e.Records)

	// Rebuild the item universe for the contrast baseline.
	ex := &extract.Extractor{Schema: e.Schema, Stats: e.Stats}
	var all []*aggregate.Item
	for _, rec := range e.Records {
		a, err := ex.ExtractSQL(rec.SQL)
		if err != nil || a.IsEmpty() {
			continue
		}
		all = append(all, &aggregate.Item{Area: a, Weight: 1, Users: map[string]struct{}{}})
	}
	out := &DensityResult{Contrasts: make(map[int]float64)}
	var b strings.Builder
	fmt.Fprintf(&b, "Density contrast (§6.3 follow-up): query density inside each cluster box vs its surroundings\n")
	for _, row := range paperTable1() {
		c := matchCluster(res, row)
		if c == nil {
			continue
		}
		contrast := aggregate.DensityContrast(c, all, 0.5)
		out.Contrasts[row.id] = contrast
		fmt.Fprintf(&b, "  paper cluster %2d: %10.1fx denser than its shell (%d queries)\n",
			row.id, contrast, c.Cardinality)
	}
	fmt.Fprintf(&b, "interpretation: values ≫ 1 confirm the clusters are genuine hotspots, not sampling artefacts\n")
	out.Report = b.String()
	return out
}

// ScalingPoint is one row of the scaling curve.
type ScalingPoint struct {
	Queries       int
	DistinctAreas int
	ExtractTime   time.Duration
	ClusterTime   time.Duration
}

// ScalingResult is the outcome of the scaling experiment.
type ScalingResult struct {
	Points []ScalingPoint
	Report string
}

// RunScaling measures extraction and clustering time across log sizes —
// the §6.2 observation that made the paper sample 5.6M of 12.4M queries:
// extraction scales linearly while DBSCAN's O(n²) region queries dominate
// as the number of distinct areas grows.
func (e *Env) RunScaling() *ScalingResult {
	out := &ScalingResult{}
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling (§6.2 sampling motivation): extraction is linear, clustering quadratic\n")
	fmt.Fprintf(&b, "%-10s %-16s %-14s %-14s\n", "queries", "distinct areas", "extract", "cluster")
	for _, scale := range []int{2000, 4000, 8000} {
		sub := NewEnvRows(scale, e.Seed, 500)
		ex := &extract.Extractor{Schema: sub.Schema, Stats: sub.Stats}
		p := &qlog.Pipeline{Extractor: ex}
		t0 := time.Now()
		areas, _ := p.Run(sub.Records)
		extractTime := time.Since(t0)

		miner := core.NewMiner(core.Config{Schema: sub.Schema, Stats: sub.Stats, Workers: 1})
		t1 := time.Now()
		res := miner.MineAreas(areas)
		clusterTime := time.Since(t1)

		pt := ScalingPoint{
			Queries: scale, DistinctAreas: res.DistinctAreas,
			ExtractTime: extractTime, ClusterTime: clusterTime,
		}
		out.Points = append(out.Points, pt)
		fmt.Fprintf(&b, "%-10d %-16d %-14v %-14v\n", pt.Queries, pt.DistinctAreas,
			pt.ExtractTime.Round(time.Millisecond), pt.ClusterTime.Round(time.Millisecond))
	}
	if n := len(out.Points); n >= 2 {
		first, last := out.Points[0], out.Points[n-1]
		qRatio := float64(last.Queries) / float64(first.Queries)
		exRatio := float64(last.ExtractTime) / float64(first.ExtractTime)
		clRatio := float64(last.ClusterTime) / float64(first.ClusterTime)
		fmt.Fprintf(&b, "%.0fx more queries -> %.1fx extraction time, %.1fx clustering time\n",
			qRatio, exRatio, clRatio)
	}
	out.Report = b.String()
	return out
}
