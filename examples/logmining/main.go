// Logmining: the full case-study pipeline of Section 6 — generate a
// synthetic SkyServer log, seed access statistics from a database sample
// (Section 5.3), mine aggregated access areas with DBSCAN, and print a
// Table-1-style report with coverage statistics.
package main

import (
	"fmt"

	skyaccess "repro"
)

func main() {
	const logSize = 8000

	// The substrate: synthetic SkyServer database + schema.
	db := skyaccess.SkyServerDatabase(1500, 1)
	stats := skyaccess.NewAccessStats()
	skyaccess.SeedStatsFromDatabase(db, stats)

	// A query log whose workload mirrors the paper's Table 1.
	log := skyaccess.GenerateSkyServerLog(logSize, 42)
	fmt.Printf("generated %d log records\n", len(log))

	miner := skyaccess.NewMiner(skyaccess.Config{
		Schema: skyaccess.SkyServerSchema(),
		Stats:  stats,
		// DBSCAN parameters; zero values mean the defaults (0.06 / 8).
	})
	result := miner.MineRecords(log)
	result.AttachCoverage(db)

	st := result.PipelineStats
	fmt.Printf("extracted %d/%d (%.2f%%); %d distinct areas; %d clusters; %d noise queries\n\n",
		st.Extracted, st.Total, 100*st.Coverage(), result.DistinctAreas,
		len(result.Clusters), result.NoiseQueries)

	fmt.Printf("%-4s %-8s %-7s %-9s %-9s %s\n", "id", "queries", "users", "area-cov", "obj-cov", "aggregated access area")
	for i, c := range result.Clusters {
		if i >= 25 {
			fmt.Printf("... and %d more clusters\n", len(result.Clusters)-25)
			break
		}
		expr := c.Expr()
		if len(expr) > 95 {
			expr = expr[:95] + "…"
		}
		fmt.Printf("%-4d %-8d %-7d %-9.3f %-9.3f %s\n",
			c.ID, c.Cardinality, c.UserCount, c.AreaCoverage, c.ObjectCoverage, expr)
	}
}
