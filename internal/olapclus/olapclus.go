// Package olapclus re-implements the decision-relevant behaviour of the
// OLAPClus comparator [4] used in Sections 6.4 and 6.5:
//
//   - the structural distance with EXACT matching of atomic predicates
//     (Section 6.4) — two predicates either match verbatim or not at all, so
//     "Photoz.objid = c1" and "Photoz.objid = c2" never land in the same
//     cluster and the equality-heavy population shatters into one cluster
//     per distinct constant;
//   - the hybrid of Section 6.5 that reuses the paper's d_conj but on RAW
//     (untransformed) predicates: no NOT push-down, no outer-join or
//     HAVING mapping, no EXISTS flattening, no consolidation. Queries whose
//     surface predicates differ (e.g. a vacuous "HAVING COUNT(*) > 1"
//     variant of a plain range query) then fail to cluster together.
package olapclus

import (
	"sort"
	"strings"

	"repro/internal/dbscan"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/predicate"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// ExactDistance is the Section 6.4 structural distance: Jaccard distance
// over the relation sets plus Jaccard distance over the exact predicate
// keys. Identical queries have distance 0; queries differing in any
// constant share fewer keys and drift apart.
func ExactDistance(a, b *extract.AccessArea) float64 {
	dt := jaccard(a.Relations, b.Relations)
	ka, kb := predKeys(a.CNF), predKeys(b.CNF)
	return dt + jaccard(ka, kb)
}

func predKeys(c predicate.CNF) []string {
	set := make(map[string]struct{})
	for _, cl := range c {
		for _, p := range cl {
			set[p.Key()] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	setB := make(map[string]struct{}, len(b))
	for _, s := range b {
		setB[s] = struct{}{}
	}
	inter := 0
	for _, s := range a {
		if _, ok := setB[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// ClusterExact runs DBSCAN under the exact-matching distance over
// deduplicated access areas (weights = multiplicities) and returns the
// number of clusters — the statistic Section 6.4 compares (~100,000
// clusters for the paper's Cluster 1 vs 1 for our method).
func ClusterExact(areas []*extract.AccessArea, weights []int, eps float64, minPts int) *dbscan.Result {
	return dbscan.Cluster(len(areas), func(i, j int) float64 {
		return ExactDistance(areas[i], areas[j])
	}, dbscan.Config{Eps: eps, MinPts: minPts, Weights: weights})
}

// RawArea extracts the "predicates as-is" representation of a query used by
// the Section 6.5 hybrid: relations from the FROM clause only, and a flat
// conjunction of every atomic predicate found anywhere in the statement —
// including join conditions of outer joins, HAVING aggregates (as opaque
// pseudo-columns like "SUM(T.v)") and subquery predicates — with no
// semantic transformation. Column names are canonicalised against sc (name
// resolution is not a transformation; OLAPClus needs it too), aggregate
// pseudo-columns stay as written.
func RawArea(sc *schema.Schema, sel *sqlparser.SelectStatement) *extract.AccessArea {
	rc := &rawCollector{schema: sc}
	rc.collectSelect(sel)
	sort.Strings(rc.relations)
	cnf := make(predicate.CNF, 0, len(rc.preds))
	for _, p := range rc.preds {
		cnf = append(cnf, predicate.Clause{p})
	}
	return &extract.AccessArea{Relations: dedupe(rc.relations), CNF: cnf, Exact: false}
}

// RawAreaSQL parses and raw-extracts a statement.
func RawAreaSQL(sc *schema.Schema, src string) (*extract.AccessArea, error) {
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return RawArea(sc, sel), nil
}

func dedupe(in []string) []string {
	seen := make(map[string]struct{}, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		out = append(out, s)
	}
	return out
}

type rawCollector struct {
	schema    *schema.Schema
	relations []string
	preds     []predicate.Pred
}

func (rc *rawCollector) collectSelect(sel *sqlparser.SelectStatement) {
	for _, te := range sel.From {
		rc.collectTable(te)
	}
	if sel.Where != nil {
		rc.collectExpr(sel.Where)
	}
	if sel.Having != nil {
		rc.collectExpr(sel.Having)
	}
	for _, arm := range sel.Unions {
		rc.collectSelect(arm.Select)
	}
}

func (rc *rawCollector) collectTable(te sqlparser.TableExpr) {
	switch t := te.(type) {
	case *sqlparser.TableName:
		name := t.Name
		if i := strings.LastIndex(name, "."); i >= 0 {
			name = name[i+1:]
		}
		rc.relations = append(rc.relations, name)
	case *sqlparser.Join:
		rc.collectTable(t.Left)
		rc.collectTable(t.Right)
		if t.On != nil {
			// Raw handling keeps the ON condition regardless of join type —
			// precisely what loses the FULL OUTER JOIN semantics.
			rc.collectExpr(t.On)
		}
	case *sqlparser.SubqueryTable:
		rc.collectSelect(t.Select)
	}
}

func (rc *rawCollector) collectExpr(e sqlparser.Expr) {
	switch x := e.(type) {
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			rc.collectExpr(x.L)
			rc.collectExpr(x.R)
		case "=", "<>", "<", "<=", ">", ">=":
			rc.collectComparison(x)
		}
	case *sqlparser.UnaryExpr:
		// Raw: NOT is ignored, inner predicates kept as-is.
		rc.collectExpr(x.X)
	case *sqlparser.BetweenExpr:
		rc.collectComparison(&sqlparser.BinaryExpr{Op: ">=", L: x.X, R: x.Lo})
		rc.collectComparison(&sqlparser.BinaryExpr{Op: "<=", L: x.X, R: x.Hi})
	case *sqlparser.InListExpr:
		for _, item := range x.List {
			rc.collectComparison(&sqlparser.BinaryExpr{Op: "=", L: x.X, R: item})
		}
	case *sqlparser.InSubqueryExpr:
		rc.collectSelect(x.Sub)
	case *sqlparser.ExistsExpr:
		rc.collectSelect(x.Sub)
	case *sqlparser.QuantifiedExpr:
		rc.collectSelect(x.Sub)
	case *sqlparser.ScalarSubquery:
		rc.collectSelect(x.Sub)
	case *sqlparser.LikeExpr:
		if cr, ok := x.X.(*sqlparser.ColumnRef); ok {
			if pat, ok := x.Pattern.(*sqlparser.StringLit); ok {
				rc.preds = append(rc.preds, predicate.CC(rc.rawName(cr), predicate.Eq, predicate.Str(pat.Value)))
			}
		}
	}
}

func (rc *rawCollector) collectComparison(b *sqlparser.BinaryExpr) {
	op, ok := predicate.ParseOp(b.Op)
	if !ok {
		return
	}
	lcol, lIsCol := rc.rawOperandName(b.L)
	rcol, rIsCol := rc.rawOperandName(b.R)
	lval, lIsVal := rawConst(b.L)
	rval, rIsVal := rawConst(b.R)
	switch {
	case lIsCol && rIsVal:
		rc.preds = append(rc.preds, predicate.CC(lcol, op, rval))
	case lIsVal && rIsCol:
		rc.preds = append(rc.preds, predicate.CC(rcol, op.Flip(), lval))
	case lIsCol && rIsCol:
		rc.preds = append(rc.preds, predicate.Cols(lcol, op, rcol))
	}
	// Subqueries inside comparisons still contribute their own predicates.
	if sub, ok := b.R.(*sqlparser.ScalarSubquery); ok {
		rc.collectSelect(sub.Sub)
	}
	if sub, ok := b.L.(*sqlparser.ScalarSubquery); ok {
		rc.collectSelect(sub.Sub)
	}
}

// rawOperandName names a column operand, including aggregate pseudo-columns
// ("COUNT(*)", "SUM(T.v)") — the raw representation does not interpret
// them.
func (rc *rawCollector) rawOperandName(e sqlparser.Expr) (string, bool) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		return rc.rawName(x), true
	case *sqlparser.FuncCall:
		return sqlparser.FormatExpr(x), true
	}
	return "", false
}

func (rc *rawCollector) rawName(c *sqlparser.ColumnRef) string {
	if rc.schema == nil {
		return c.Qualified()
	}
	if c.Table != "" {
		if r := rc.schema.Relation(c.Table); r != nil {
			return r.QualifiedColumn(c.Name)
		}
		return c.Qualified()
	}
	return rc.schema.ResolveColumn(c.Name, rc.relations)
}

func rawConst(e sqlparser.Expr) (predicate.Value, bool) {
	switch x := e.(type) {
	case *sqlparser.NumberLit:
		return predicate.NumberText(x.Value, x.Text), true
	case *sqlparser.StringLit:
		return predicate.Str(x.Value), true
	}
	return predicate.Value{}, false
}

// ClusterRawConj clusters raw areas with the paper's d_conj/d_tables metric
// (the Section 6.5 hybrid).
func ClusterRawConj(areas []*extract.AccessArea, weights []int, metric *distance.Metric, eps float64, minPts int) *dbscan.Result {
	profiles := make([]*distance.Profile, len(areas))
	for i, a := range areas {
		profiles[i] = metric.Profile(a)
	}
	return dbscan.Cluster(len(areas), func(i, j int) float64 {
		return metric.ProfileDistance(profiles[i], profiles[j])
	}, dbscan.Config{Eps: eps, MinPts: minPts, Weights: weights})
}
