// Package traffic classifies ingested query-log records into traffic
// classes and mines each class separately. The SkyServer Traffic Report
// (Singh et al.) shows real telescope-archive traffic is dominated by a few
// programmatic bots, shaped by human browse sessions, and salted with
// administrative statements — so a single global interest profile conflates
// crawler noise with genuine astronomer interests. The package provides:
//
//   - an online per-user Classifier (request rate, inter-query gap
//     regularity, fingerprint diversity, session length, plus an explicit
//     override list) assigning each record to bot / human / admin,
//   - a Drift detector emitting appeared / grew / shrank / vanished events
//     when a class's clusters move between epochs, and
//   - an Interfaces miner rendering the hottest statement fingerprints as
//     parameterized query interfaces (slot name, inferred type, observed
//     value range) from the extraction layer's slotted templates.
//
// Everything here is deterministic for a given observation sequence: the
// serving layer feeds it under its admission lock, so two runs of the same
// workload produce byte-identical per-class reports and drift logs.
package traffic

// Traffic classes. The empty string means "unclassified" and never appears
// on a record once classification is enabled.
const (
	Bot   = "bot"
	Human = "human"
	Admin = "admin"
)

// Classes lists the valid classes in their canonical (report) order.
var Classes = []string{Bot, Human, Admin}

// ValidClass reports whether s names a traffic class.
func ValidClass(s string) bool {
	return s == Bot || s == Human || s == Admin
}
