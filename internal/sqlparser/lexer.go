package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// LexError is a lexical error with position information.
type LexError struct {
	Msg  string
	Line int
	Col  int
}

func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lexer turns SQL text into tokens. It handles line comments (--), block
// comments (/* */), single-quoted strings with ” escaping, double-quoted
// and [bracketed] and `backticked` identifiers, numbers (including
// scientific notation and leading-dot floats), and multi-character
// operators.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	lits int // literal tokens emitted so far (assigns Token.Slot)
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the whole input. The returned slice always ends with an EOF
// token on success.
func (lx *Lexer) Tokens() ([]Token, error) {
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == EOF {
			return out, nil
		}
	}
}

func (lx *Lexer) errf(format string, args ...any) error {
	return &LexError{Msg: fmt.Sprintf(format, args...), Line: lx.line, Col: lx.col}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	b := lx.src[lx.pos]
	lx.pos++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '-' && lx.peekByteAt(1) == '-':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case b == '/' && lx.peekByteAt(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return &LexError{Msg: "unterminated block comment", Line: startLine, Col: startCol}
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '#' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '#' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := lx.pos, lx.line, lx.col
	mk := func(kind TokenKind, text string) Token {
		t := Token{Kind: kind, Text: text, Pos: start, Line: line, Col: col}
		if kind == Number || kind == String || kind == Param {
			lx.lits++
			t.Slot = lx.lits
		}
		return t
	}
	if lx.pos >= len(lx.src) {
		return mk(EOF, ""), nil
	}
	b := lx.peekByte()
	switch {
	case b == '\'':
		text, err := lx.lexString()
		if err != nil {
			return Token{}, err
		}
		return mk(String, text), nil
	case b == '"' || b == '[' || b == '`':
		text, err := lx.lexQuotedIdent(b)
		if err != nil {
			return Token{}, err
		}
		return mk(Ident, text), nil
	case b >= '0' && b <= '9', b == '.' && lx.peekByteAt(1) >= '0' && lx.peekByteAt(1) <= '9':
		return mk(Number, lx.lexNumber()), nil
	case b == '@':
		pstart := lx.pos
		lx.advance()
		lx.scanIdentPart()
		if lx.pos == pstart+1 {
			return Token{}, lx.errf("bare '@'")
		}
		return mk(Param, lx.src[pstart:lx.pos]), nil
	}
	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isIdentStart(r) {
		text := lx.lexIdent()
		if kw, ok := keywordCanon(text); ok {
			return mk(Keyword, kw), nil
		}
		return mk(Ident, text), nil
	}
	op, err := lx.lexOperator()
	if err != nil {
		return Token{}, err
	}
	return mk(Op, op), nil
}

// lexString slices the literal straight out of the source; only a string
// with an escaped quote (”) pays a builder (lexStringSlow).
func (lx *Lexer) lexString() (string, error) {
	startLine, startCol := lx.line, lx.col
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) {
		b := lx.advance()
		if b == '\'' {
			if lx.peekByte() == '\'' { // escaped quote
				return lx.lexStringSlow(lx.src[start:lx.pos-1], startLine, startCol)
			}
			return lx.src[start : lx.pos-1], nil
		}
	}
	return "", &LexError{Msg: "unterminated string literal", Line: startLine, Col: startCol}
}

// lexStringSlow resumes a string literal at its first escaped quote: prefix
// is everything before it, the lexer sits on the pair's second quote.
func (lx *Lexer) lexStringSlow(prefix string, startLine, startCol int) (string, error) {
	var sb strings.Builder
	sb.WriteString(prefix)
	sb.WriteByte('\'')
	lx.advance() // second quote of the escaped pair
	for lx.pos < len(lx.src) {
		b := lx.advance()
		if b == '\'' {
			if lx.peekByte() == '\'' { // escaped quote
				sb.WriteByte('\'')
				lx.advance()
				continue
			}
			return sb.String(), nil
		}
		sb.WriteByte(b)
	}
	return "", &LexError{Msg: "unterminated string literal", Line: startLine, Col: startCol}
}

func (lx *Lexer) lexQuotedIdent(open byte) (string, error) {
	startLine, startCol := lx.line, lx.col
	var close byte
	switch open {
	case '"':
		close = '"'
	case '[':
		close = ']'
	case '`':
		close = '`'
	}
	lx.advance()
	start := lx.pos
	for lx.pos < len(lx.src) {
		b := lx.advance()
		if b == close {
			return lx.src[start : lx.pos-1], nil
		}
	}
	return "", &LexError{Msg: "unterminated quoted identifier", Line: startLine, Col: startCol}
}

func (lx *Lexer) lexNumber() string {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b >= '0' && b <= '9':
			lx.advance()
		case b == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.advance()
		case (b == 'e' || b == 'E') && !seenExp && lx.pos > start:
			// Lookahead: exponent must be followed by digit or sign+digit.
			n1, n2 := lx.peekByteAt(1), lx.peekByteAt(2)
			if n1 >= '0' && n1 <= '9' || ((n1 == '+' || n1 == '-') && n2 >= '0' && n2 <= '9') {
				seenExp = true
				lx.advance()
				if lx.peekByte() == '+' || lx.peekByte() == '-' {
					lx.advance()
				}
			} else {
				return lx.src[start:lx.pos]
			}
		default:
			return lx.src[start:lx.pos]
		}
	}
	return lx.src[start:lx.pos]
}

func (lx *Lexer) lexIdent() string {
	start := lx.pos
	lx.scanIdentPart()
	return lx.src[start:lx.pos]
}

// scanIdentPart advances over identifier-part characters: a byte loop for
// ASCII (identifiers cannot contain '\n', so column tracking is a plain
// add), falling back to rune decoding only on multi-byte input.
func (lx *Lexer) scanIdentPart() {
	for lx.pos < len(lx.src) {
		b := lx.src[lx.pos]
		if b < utf8.RuneSelf {
			if !(b == '_' || b == '#' || b == '$' ||
				'a' <= b && b <= 'z' || 'A' <= b && b <= 'Z' || '0' <= b && b <= '9') {
				return
			}
			lx.pos++
			lx.col++
			continue
		}
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			return
		}
		// advance() counts columns per byte; keep that accounting.
		lx.pos += size
		lx.col += size
	}
}

func (lx *Lexer) lexOperator() (string, error) {
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "||":
		lx.advance()
		lx.advance()
		if two == "!=" {
			return "<>", nil
		}
		return two, nil
	}
	b := lx.advance()
	switch b {
	case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
		return string(b), nil
	}
	return "", lx.errf("unexpected character %q", string(b))
}
