// Package distance implements the query distance function of Section 5:
//
//	d(q1, q2) = d_tables(q1.FROM, q2.FROM) + d_conj(q1.WHERE, q2.WHERE)
//
// with d_tables the Jaccard distance over relation sets (corner case: two
// table-free queries have distance 0) and d_conj/d_disj the min-matching
// averages of the paper over clauses and atomic predicates.
//
// For the innermost d_pred the paper's literal formula ("overlap of
// intervals / width of access(a)") is a similarity rather than a
// dissimilarity (identical predicates would score 0.6 on the paper's own
// example while disjoint ones score 0); see DESIGN.md §2. The package
// therefore ships two modes:
//
//   - ModeEndpoint (default): a proper metric on predicate ranges — the L∞
//     distance between access-normalised interval endpoints for same-column
//     numeric predicates, Jaccard distance for same-column categorical
//     predicates, and 1 − occupiedFraction₁·occupiedFraction₂ across
//     columns. Equality predicates with nearby constants come out close,
//     which is what lets DBSCAN density-chain the "Photoz.objid = c"
//     population into the paper's Cluster 1.
//   - ModePaperLiteral: the formulas exactly as printed.
//
// Distances are computed on precompiled Profiles so the O(n²) clustering
// stage does no repeated interval clipping or stats lookups.
package distance

import (
	"math"

	"repro/internal/extract"
	"repro/internal/predicate"
	"repro/internal/schema"
)

// Mode selects the d_pred formula.
type Mode int

const (
	// ModeEndpoint is the corrected metric (default; see package comment).
	ModeEndpoint Mode = iota
	// ModePaperLiteral applies Section 5.2 exactly as printed.
	ModePaperLiteral
)

func (m Mode) String() string {
	switch m {
	case ModeEndpoint:
		return "endpoint"
	case ModePaperLiteral:
		return "paper-literal"
	default:
		return "unknown"
	}
}

// Metric computes distances between access areas.
type Metric struct {
	Mode  Mode
	Stats *schema.Stats
}

// New returns a Metric in the default mode over the given access statistics.
func New(stats *schema.Stats) *Metric {
	return &Metric{Stats: stats}
}

// Distance computes d(q1, q2) from raw access areas. For repeated use (e.g.
// clustering), precompile with Profile and use ProfileDistance.
func (m *Metric) Distance(a, b *extract.AccessArea) float64 {
	return m.ProfileDistance(m.Profile(a), m.Profile(b))
}

// ProfileDistance computes d_tables + d_conj on precompiled profiles.
func (m *Metric) ProfileDistance(p, q *Profile) float64 {
	return m.dTables(p, q) + m.dConj(p, q)
}

// DTables exposes the Jaccard table distance for tests and the OLAPClus
// baseline.
func (m *Metric) DTables(a, b []string) float64 {
	return jaccardDistance(a, b)
}

func jaccardDistance(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		// Corner case of Section 5.1: queries over database constants only.
		return 0
	}
	setB := make(map[string]struct{}, len(b))
	for _, t := range b {
		setB[t] = struct{}{}
	}
	inter := 0
	for _, t := range a {
		if _, ok := setB[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func (m *Metric) dTables(p, q *Profile) float64 {
	if len(p.Tables) == 0 && len(q.Tables) == 0 {
		return 0
	}
	inter := 0
	for _, t := range p.Tables {
		if _, ok := q.tableSet[t]; ok {
			inter++
		}
	}
	union := len(p.Tables) + len(q.Tables) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// dConj is the min-matching average over clauses (Section 5.2).
func (m *Metric) dConj(p, q *Profile) float64 {
	b1, b2 := p.clauses, q.clauses
	if len(b1) == 0 && len(b2) == 0 {
		return 0
	}
	if len(b1) == 0 || len(b2) == 0 {
		return 1
	}
	sum := 0.0
	for _, o1 := range b1 {
		best := math.Inf(1)
		for _, o2 := range b2 {
			if d := m.dDisj(o1, o2); d < best {
				best = d
			}
		}
		sum += best
	}
	for _, o2 := range b2 {
		best := math.Inf(1)
		for _, o1 := range b1 {
			if d := m.dDisj(o1, o2); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(b1)+len(b2))
}

// dDisj is the min-matching average over the atomic predicates of two
// disjunctions.
func (m *Metric) dDisj(o1, o2 clauseProfile) float64 {
	if len(o1) == 0 && len(o2) == 0 {
		return 0
	}
	if len(o1) == 0 || len(o2) == 0 {
		return 1
	}
	sum := 0.0
	for i := range o1 {
		best := math.Inf(1)
		for j := range o2 {
			if d := m.dPred(&o1[i], &o2[j]); d < best {
				best = d
			}
		}
		sum += best
	}
	for j := range o2 {
		best := math.Inf(1)
		for i := range o1 {
			if d := m.dPred(&o1[i], &o2[j]); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(o1)+len(o2))
}

// DPred exposes the atomic-predicate distance for tests.
func (m *Metric) DPred(p1, p2 predicate.Pred) float64 {
	pp1 := m.compilePred(p1)
	pp2 := m.compilePred(p2)
	return m.dPred(&pp1, &pp2)
}

func (m *Metric) dPred(p1, p2 *predProfile) float64 {
	switch {
	case p1.kind == kindColCol || p2.kind == kindColCol:
		return m.dPredColCol(p1, p2)
	case p1.column == p2.column:
		return m.dPredSameColumn(p1, p2)
	default:
		return m.dPredDifferentColumns(p1, p2)
	}
}

func (m *Metric) dPredColCol(p1, p2 *predProfile) float64 {
	if p1.kind != kindColCol || p2.kind != kindColCol {
		// Mixed kinds: structurally different constraints.
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	same := p1.column == p2.column && p1.column2 == p2.column2
	switch {
	case same && p1.op == p2.op:
		return 0
	case same:
		return 0.5
	default:
		return 1
	}
}

func (m *Metric) dPredSameColumn(p1, p2 *predProfile) float64 {
	if p1.kind != p2.kind {
		// Numeric vs string constant on the same column.
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if p1.kind == kindString {
		return m.dPredCategorical(p1, p2)
	}
	w := p1.accessWidth
	if w <= 0 {
		// Degenerate access range: identical constants only.
		if p1.iv.Equal(p2.iv) {
			return 0
		}
		if m.Mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if m.Mode == ModePaperLiteral {
		// "overlap of intervals / width of access(a)".
		return p1.iv.OverlapLen(p2.iv) / w
	}
	// Endpoint metric: L∞ distance of clipped endpoints, normalised.
	d := math.Max(math.Abs(p1.iv.Lo-p2.iv.Lo), math.Abs(p1.iv.Hi-p2.iv.Hi)) / w
	if d > 1 {
		d = 1
	}
	return d
}

func (m *Metric) dPredCategorical(p1, p2 *predProfile) float64 {
	inter := 0
	for v := range p1.strSet {
		if _, ok := p2.strSet[v]; ok {
			inter++
		}
	}
	if m.Mode == ModePaperLiteral {
		// "the number of items p1 and p2 have in common" over |access(a)|.
		if p1.accessCard <= 0 {
			return 0
		}
		return float64(inter) / float64(p1.accessCard)
	}
	union := len(p1.strSet) + len(p2.strSet) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func (m *Metric) dPredDifferentColumns(p1, p2 *predProfile) float64 {
	// "the proportion of the joint space of the involved columns occupied
	// by p1 and p2" (Section 5.2).
	occupied := p1.frac * p2.frac
	if m.Mode == ModePaperLiteral {
		return occupied
	}
	return 1 - occupied
}
