// Streaming: process an incoming stream of logged queries and notify the
// operator about the occurrence of new predicates and query types — the
// extension sketched at the start of Section 4.
package main

import (
	"fmt"

	skyaccess "repro"
	"repro/internal/qlog"
)

func main() {
	schema := skyaccess.SkyServerSchema()
	ex := skyaccess.NewExtractor(schema)

	events := 0
	monitor := skyaccess.NewStreamMonitor(func(e qlog.Event) {
		events++
		fmt.Printf("  [notify] %-22s %s (first seen at seq %d)\n", e.Kind, e.Detail, e.Record.Seq)
	})

	// Simulate a stream: a steady diet of familiar queries, then novel ones.
	stream := []string{
		"SELECT z FROM Photoz WHERE objid = 1237657855534432934",
		"SELECT z FROM Photoz WHERE objid = 1237657855534499999",
		"SELECT z FROM Photoz WHERE objid = 1237657855534500000",
		// New column on a known relation.
		"SELECT * FROM Photoz WHERE z < 0.1",
		// New relation entirely.
		"SELECT * FROM sppParams WHERE fehadop BETWEEN -0.3 AND 0.5",
		// New categorical value.
		"SELECT * FROM SpecObjAll WHERE class = 'QSO'",
		"SELECT * FROM SpecObjAll WHERE class = 'QSO' AND plate > 300",
		// Seen before: silent.
		"SELECT z FROM Photoz WHERE objid = 1237657855534432934",
	}

	fmt.Println("processing stream:")
	for seq, sql := range stream {
		rec := qlog.Record{Seq: seq, SQL: sql}
		area, err := ex.ExtractSQL(sql)
		if err != nil {
			fmt.Printf("  [error]  seq %d: %v\n", seq, err)
			continue
		}
		monitor.Observe(rec, area)
	}
	fmt.Printf("\n%d notifications over %d statements; known shapes:\n", events, len(stream))
	for _, s := range monitor.KnownShapes() {
		fmt.Printf("  %s\n", s)
	}
}
