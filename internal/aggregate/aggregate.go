// Package aggregate turns DBSCAN clusters of access areas into the
// aggregated access areas reported in Table 1: the minimum bounding
// hyper-rectangle of the member constraints with extreme range bounds
// removed by the 3-standard-deviation rule, plus cardinality, distinct-user
// count, area coverage and object coverage (Section 6.2).
package aggregate

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
)

// Item is one distinct access area inside a cluster, with its multiplicity
// in the log.
type Item struct {
	Area *extract.AccessArea
	// Weight is the number of raw queries sharing this access area.
	Weight int
	// Users is the set of distinct users who issued such queries.
	Users map[string]struct{}
	// RelKey is the interned extract.RelationSetKey of Area.Relations,
	// computed once when the item is created so the per-epoch partitioning
	// hot path (and the shard router) never re-joins the relation list.
	// Empty means "not yet computed" — consumers fall back to deriving it.
	RelKey string
}

// Options controls summarisation.
type Options struct {
	// SigmaRule is the k of the k-standard-deviation outlier rule applied
	// to range bounds; the paper uses 3. <= 0 disables trimming.
	SigmaRule float64
	// MinColumnSupport is the fraction of members that must constrain a
	// column for it to appear in the aggregated box (default 0.5).
	MinColumnSupport float64
}

func (o Options) sigma() float64 {
	if o.SigmaRule == 0 {
		return 3
	}
	return o.SigmaRule
}

func (o Options) support() float64 {
	if o.MinColumnSupport == 0 {
		return 0.5
	}
	return o.MinColumnSupport
}

// Summary is one aggregated access area (a row of Table 1).
type Summary struct {
	ID int
	// Cardinality is the number of queries in the cluster.
	Cardinality int
	// UserCount is the number of distinct users.
	UserCount int
	// Relations is the union of the members' relation sets.
	Relations []string
	// Box is the aggregated numeric access area (3σ-trimmed MBR).
	Box *interval.Box
	// Categorical holds per-column accessed value sets (sorted).
	Categorical map[string][]string
	// JoinPreds lists column-column predicates shared by most members.
	JoinPreds []string
	// Representatives holds up to three member access areas in
	// intermediate-SQL form, ordered by weight — the "explain the cluster
	// with example queries" presentation improvement the paper's domain
	// experts asked for (Section 6.3).
	Representatives []string
	// AreaCoverage and ObjectCoverage are filled by Coverage.
	AreaCoverage   float64
	ObjectCoverage float64
}

// Expr renders the aggregated access area as a Boolean expression in the
// style of Table 1.
func (s *Summary) Expr() string {
	var parts []string
	for _, col := range sortedKeys(s.Categorical) {
		vals := s.Categorical[col]
		if len(vals) == 1 {
			parts = append(parts, fmt.Sprintf("(%s = '%s')", col, vals[0]))
			continue
		}
		sub := make([]string, len(vals))
		for i, v := range vals {
			sub[i] = fmt.Sprintf("(%s = '%s')", col, v)
		}
		parts = append(parts, "("+strings.Join(sub, " OR ")+")")
	}
	for _, col := range s.Box.Dims() {
		iv := s.Box.Get(col)
		switch {
		case iv.IsEmpty():
			parts = append(parts, fmt.Sprintf("(%s ∈ ∅)", col))
		case math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1):
			// unconstrained; skip
		case math.IsInf(iv.Lo, -1):
			parts = append(parts, fmt.Sprintf("(%s <= %s)", col, fnum(iv.Hi)))
		case math.IsInf(iv.Hi, 1):
			parts = append(parts, fmt.Sprintf("(%s >= %s)", col, fnum(iv.Lo)))
		case iv.Lo == iv.Hi:
			parts = append(parts, fmt.Sprintf("(%s = %s)", col, fnum(iv.Lo)))
		default:
			parts = append(parts, fmt.Sprintf("(%s <= %s <= %s)", fnum(iv.Lo), col, fnum(iv.Hi)))
		}
	}
	parts = append(parts, s.JoinPreds...)
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e18 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summarize builds the aggregated access area of one cluster.
func Summarize(id int, items []*Item, opts Options) *Summary {
	s := &Summary{ID: id, Categorical: make(map[string][]string), Box: interval.NewBox()}
	users := make(map[string]struct{})
	relSet := make(map[string]struct{})
	totalWeight := 0
	for _, it := range items {
		w := it.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
		for u := range it.Users {
			users[u] = struct{}{}
		}
		for _, r := range it.Area.Relations {
			relSet[r] = struct{}{}
		}
	}
	s.Cardinality = totalWeight
	s.UserCount = len(users)
	s.Relations = make([]string, 0, len(relSet))
	for r := range relSet {
		s.Relations = append(s.Relations, r)
	}
	sort.Strings(s.Relations)

	s.Box = numericBox(items, totalWeight, opts)
	s.Categorical = categoricalValues(items, totalWeight, opts)
	s.JoinPreds = joinPreds(items, totalWeight, opts)
	s.Representatives = representatives(items, 3)
	return s
}

// representatives picks the n heaviest distinct member areas.
func representatives(items []*Item, n int) []string {
	sorted := append([]*Item(nil), items...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].Area.Key() < sorted[j].Area.Key()
	})
	var out []string
	for _, it := range sorted {
		if len(out) >= n {
			break
		}
		out = append(out, it.Area.IntermediateSQL())
	}
	return out
}

// colBounds collects, per column, the weighted lower/upper bound samples of
// every member's projection.
type boundSamples struct {
	los, his []weighted // finite samples
	loInf    int        // weight of members unbounded below
	hiInf    int        // weight of members unbounded above
	support  int        // total weight of members constraining this column
}

type weighted struct {
	v float64
	w int
}

func numericBox(items []*Item, totalWeight int, opts Options) *interval.Box {
	byCol := make(map[string]*boundSamples)
	for _, it := range items {
		w := it.Weight
		if w <= 0 {
			w = 1
		}
		for col, set := range it.Area.Bounds() {
			h := set.Hull()
			if h.IsEmpty() {
				continue
			}
			bs, ok := byCol[col]
			if !ok {
				bs = &boundSamples{}
				byCol[col] = bs
			}
			bs.support += w
			if math.IsInf(h.Lo, -1) {
				bs.loInf += w
			} else {
				bs.los = append(bs.los, weighted{h.Lo, w})
			}
			if math.IsInf(h.Hi, 1) {
				bs.hiInf += w
			} else {
				bs.his = append(bs.his, weighted{h.Hi, w})
			}
		}
	}
	box := interval.NewBox()
	minSupport := int(math.Ceil(opts.support() * float64(totalWeight)))
	for col, bs := range byCol {
		if bs.support < minSupport {
			continue
		}
		lo := trimmedExtreme(bs.los, bs.loInf, opts.sigma(), true)
		hi := trimmedExtreme(bs.his, bs.hiInf, opts.sigma(), false)
		box.Set(col, interval.Interval{Lo: lo, Hi: hi})
	}
	return box
}

// trimmedExtreme applies the k-sigma rule to the bound samples and returns
// the surviving extreme (min of lower bounds / max of upper bounds).
// Unbounded members dominate when they outweigh the bounded ones.
func trimmedExtreme(samples []weighted, infWeight int, sigma float64, lower bool) float64 {
	finiteWeight := 0
	for _, s := range samples {
		finiteWeight += s.w
	}
	if infWeight > finiteWeight {
		if lower {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	if len(samples) == 0 {
		if lower {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	mean, std := weightedMeanStd(samples)
	best := math.NaN()
	for _, s := range samples {
		if sigma > 0 && std > 0 && math.Abs(s.v-mean) > sigma*std {
			continue // extreme bound, dropped by the 3σ rule
		}
		if math.IsNaN(best) || (lower && s.v < best) || (!lower && s.v > best) {
			best = s.v
		}
	}
	if math.IsNaN(best) {
		// Everything trimmed (degenerate); fall back to untrimmed extreme.
		best = samples[0].v
		for _, s := range samples[1:] {
			if (lower && s.v < best) || (!lower && s.v > best) {
				best = s.v
			}
		}
	}
	return best
}

func weightedMeanStd(samples []weighted) (mean, std float64) {
	total := 0.0
	for _, s := range samples {
		total += float64(s.w)
	}
	if total == 0 {
		return 0, 0
	}
	for _, s := range samples {
		mean += s.v * float64(s.w)
	}
	mean /= total
	var varSum float64
	for _, s := range samples {
		d := s.v - mean
		varSum += d * d * float64(s.w)
	}
	return mean, math.Sqrt(varSum / total)
}

// categoricalValues collects string-equality values per column with
// sufficient support.
func categoricalValues(items []*Item, totalWeight int, opts Options) map[string][]string {
	type colVals struct {
		vals    map[string]struct{}
		support int
	}
	byCol := make(map[string]*colVals)
	for _, it := range items {
		w := it.Weight
		if w <= 0 {
			w = 1
		}
		seen := make(map[string]bool)
		for _, cl := range it.Area.CNF {
			for _, p := range cl {
				if p.Kind != predicate.ColumnConstant || p.Val.Kind != predicate.StringVal {
					continue
				}
				cv, ok := byCol[p.Column]
				if !ok {
					cv = &colVals{vals: make(map[string]struct{})}
					byCol[p.Column] = cv
				}
				cv.vals[p.Val.Str] = struct{}{}
				if !seen[p.Column] {
					cv.support += w
					seen[p.Column] = true
				}
			}
		}
	}
	out := make(map[string][]string)
	minSupport := int(math.Ceil(opts.support() * float64(totalWeight)))
	for col, cv := range byCol {
		if cv.support < minSupport {
			continue
		}
		vals := make([]string, 0, len(cv.vals))
		for v := range cv.vals {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out[col] = vals
	}
	return out
}

// joinPreds collects column-column predicates shared by enough members.
func joinPreds(items []*Item, totalWeight int, opts Options) []string {
	support := make(map[string]int)
	for _, it := range items {
		w := it.Weight
		if w <= 0 {
			w = 1
		}
		seen := make(map[string]bool)
		for _, cl := range it.Area.CNF {
			for _, p := range cl {
				if p.Kind != predicate.ColumnColumn {
					continue
				}
				key := "(" + p.String() + ")"
				if !seen[key] {
					support[key] += w
					seen[key] = true
				}
			}
		}
	}
	minSupport := int(math.Ceil(opts.support() * float64(totalWeight)))
	var out []string
	for key, w := range support {
		if w >= minSupport {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
