package core

import (
	"math"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/predicate"
)

// Recommendation pairs a cluster with its distance to the user's own
// activity.
type Recommendation struct {
	Cluster *aggregate.Summary
	// Distance is the minimum Section 5 distance between the user's areas
	// and a synthetic area representing the cluster.
	Distance float64
}

// Recommend ranks the mined clusters for a user by proximity to the user's
// own recent access areas — the QueRIE-style "interesting queries others
// ran" orientation the paper's domain experts asked for (Sections 3.2 and
// 6.3). Clusters the user's areas already sit inside (distance ≈ 0) are
// skipped: recommending what they already query helps nobody. The remaining
// clusters are ordered nearest-first, returning at most k.
func (m *Miner) Recommend(res *Result, userAreas []*extract.AccessArea, k int) []Recommendation {
	if k <= 0 || len(res.Clusters) == 0 || len(userAreas) == 0 {
		return nil
	}
	metric := &distance.Metric{Mode: m.cfg.Mode, Stats: m.stats}
	userProfiles := make([]*distance.Profile, len(userAreas))
	for i, a := range userAreas {
		userProfiles[i] = metric.Profile(a)
	}
	var out []Recommendation
	for _, c := range res.Clusters {
		own := false
		for _, ua := range userAreas {
			if areaInsideCluster(ua, c) {
				own = true
				break
			}
		}
		if own {
			continue // already the user's own neighbourhood
		}
		area := clusterArea(c)
		cp := metric.Profile(area)
		best := math.Inf(1)
		for _, up := range userProfiles {
			if d := metric.ProfileDistance(up, cp); d < best {
				best = d
			}
		}
		out = append(out, Recommendation{Cluster: c, Distance: best})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Cluster.Cardinality > out[j].Cluster.Cardinality
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// areaInsideCluster reports whether the user's area falls inside the
// cluster's aggregated box: same relation set and every constrained column
// within the cluster's bounds.
func areaInsideCluster(a *extract.AccessArea, c *aggregate.Summary) bool {
	if len(a.Relations) != len(c.Relations) {
		return false
	}
	for i, r := range a.Relations {
		if c.Relations[i] != r {
			return false
		}
	}
	for col, set := range a.Bounds() {
		if c.Box.Has(col) && !c.Box.Get(col).ContainsInterval(set.Hull()) {
			return false
		}
	}
	return true
}

// clusterArea converts an aggregated cluster back into an access area so
// the Section 5 distance applies to it: the box becomes range predicates,
// categorical values become equality disjunctions, and the shared join
// predicates are dropped (they do not affect proximity ranking).
func clusterArea(c *aggregate.Summary) *extract.AccessArea {
	var cnf predicate.CNF
	for _, col := range c.Box.Dims() {
		iv := c.Box.Get(col)
		for _, p := range predicate.ClausesFromInterval(col, iv) {
			if p.Kind == predicate.TruePred {
				continue
			}
			cnf = append(cnf, predicate.Clause{p})
		}
	}
	for col, vals := range c.Categorical {
		var cl predicate.Clause
		for _, v := range vals {
			cl = append(cl, predicate.CC(col, predicate.Eq, predicate.Str(v)))
		}
		if len(cl) > 0 {
			cnf = append(cnf, cl)
		}
	}
	return &extract.AccessArea{Relations: c.Relations, CNF: cnf, Exact: true}
}
