package predicate

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// leafP builds a numeric leaf on a small column/value alphabet.
func leafP(col string, op Op, v float64) Expr {
	return NewLeaf(CC(col, op, Number(v)))
}

func TestNNFDeMorgan(t *testing.T) {
	// NOT (T.u > 5 AND T.v <= 10) => T.u <= 5 OR T.v > 10 (§4.1 example).
	e := NewNot(NewAnd(leafP("T.u", Gt, 5), leafP("T.v", Le, 10)))
	n := ToNNF(e)
	or, ok := n.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("nnf = %s", ExprString(n))
	}
	l := or.Kids[0].(*Leaf).P
	r := or.Kids[1].(*Leaf).P
	if l.Op != Le || l.Val.Num != 5 || r.Op != Gt || r.Val.Num != 10 {
		t.Errorf("nnf = %s", ExprString(n))
	}
}

func TestNNFDoubleNegation(t *testing.T) {
	e := NewNot(NewNot(leafP("a", Lt, 1)))
	n := ToNNF(e)
	lf, ok := n.(*Leaf)
	if !ok || lf.P.Op != Lt {
		t.Fatalf("nnf = %s", ExprString(n))
	}
}

func TestBuildersSimplify(t *testing.T) {
	if e := NewAnd(NewLeaf(True()), leafP("a", Lt, 1)); CountLeaves(e) != 1 {
		t.Errorf("AND TRUE not dropped: %s", ExprString(e))
	}
	if e := NewAnd(NewLeaf(False()), leafP("a", Lt, 1)); e.(*Leaf).P.Kind != FalsePred {
		t.Error("AND FALSE should collapse")
	}
	if e := NewOr(NewLeaf(True()), leafP("a", Lt, 1)); e.(*Leaf).P.Kind != TruePred {
		t.Error("OR TRUE should collapse")
	}
	if e := NewOr(); e.(*Leaf).P.Kind != FalsePred {
		t.Error("empty OR should be FALSE")
	}
	if e := NewAnd(); e.(*Leaf).P.Kind != TruePred {
		t.Error("empty AND should be TRUE")
	}
	// Flattening.
	e := NewAnd(NewAnd(leafP("a", Lt, 1), leafP("b", Lt, 2)), leafP("c", Lt, 3))
	if and, ok := e.(*And); !ok || len(and.Kids) != 3 {
		t.Errorf("flatten = %s", ExprString(e))
	}
}

func TestToCNFAlreadyIntermediate(t *testing.T) {
	// (T.u <= 5 OR T.u >= 10) AND T.v <= 5 — the §2.4 example.
	e := NewAnd(
		NewOr(leafP("T.u", Le, 5), leafP("T.u", Ge, 10)),
		leafP("T.v", Le, 5),
	)
	cnf, trunc := ToCNF(e, DefaultPredCap)
	if trunc {
		t.Fatal("unexpected truncation")
	}
	if len(cnf) != 2 {
		t.Fatalf("cnf = %s", cnf)
	}
}

func TestToCNFDistribution(t *testing.T) {
	// (a AND b) OR c => (a OR c) AND (b OR c).
	e := NewOr(NewAnd(leafP("a", Lt, 1), leafP("b", Lt, 2)), leafP("c", Lt, 3))
	cnf, _ := ToCNF(e, 0)
	if len(cnf) != 2 {
		t.Fatalf("cnf = %s", cnf)
	}
	for _, cl := range cnf {
		if len(cl) != 2 {
			t.Fatalf("clause = %v", cl)
		}
	}
}

func TestToCNFTautologyElimination(t *testing.T) {
	// a < 1 OR a >= 1 is a tautology => TRUE.
	e := NewOr(leafP("a", Lt, 1), leafP("a", Ge, 1))
	cnf, _ := ToCNF(e, 0)
	if !cnf.IsTrue() {
		t.Errorf("cnf = %s, want TRUE", cnf)
	}
}

func TestToCNFAbsorption(t *testing.T) {
	// (a<1) AND (a<1 OR b<2) => (a<1).
	e := NewAnd(leafP("a", Lt, 1), NewOr(leafP("a", Lt, 1), leafP("b", Lt, 2)))
	cnf, _ := ToCNF(e, 0)
	if len(cnf) != 1 || len(cnf[0]) != 1 {
		t.Errorf("cnf = %s", cnf)
	}
}

func TestTruncateCap(t *testing.T) {
	kids := make([]Expr, 50)
	for i := range kids {
		kids[i] = leafP("a", Lt, float64(i))
	}
	e := NewAnd(kids...)
	out, dropped := Truncate(ToNNF(e), 35)
	if !dropped {
		t.Fatal("expected truncation")
	}
	if n := CountLeaves(out); n > 35 {
		t.Errorf("leaves after truncation = %d", n)
	}
	// Below cap: untouched.
	_, dropped = Truncate(ToNNF(leafP("a", Lt, 1)), 35)
	if dropped {
		t.Error("small expression should not truncate")
	}
}

func TestCNFBlowupBoundedByCap(t *testing.T) {
	// (a1 AND b1) OR (a2 AND b2) OR ... with n disjuncts has 2^n clauses in
	// CNF; the cap keeps conversion tractable (§6.6).
	var kids []Expr
	for i := 0; i < 40; i++ {
		kids = append(kids, NewAnd(leafP("a", Gt, float64(i)), leafP("b", Lt, float64(i))))
	}
	e := NewOr(kids...)
	cnf, trunc := ToCNF(e, DefaultPredCap)
	if !trunc {
		t.Fatal("expected truncation at 35 predicates")
	}
	if cnf.PredCount() > 1<<20 {
		t.Fatalf("CNF exploded: %d predicates", cnf.PredCount())
	}
}

func TestCNFStringAndKey(t *testing.T) {
	e := NewAnd(NewOr(leafP("T.u", Le, 5), leafP("T.u", Ge, 10)), leafP("T.v", Le, 5))
	cnf, _ := ToCNF(e, 0)
	s := cnf.String()
	if !strings.Contains(s, "OR") || !strings.Contains(s, "AND") {
		t.Errorf("string = %q", s)
	}
	// Key stability under clause reordering.
	rev := CNF{cnf[1], cnf[0]}
	if cnf.Key() != rev.Key() {
		t.Error("key should be order-insensitive")
	}
}

func TestCNFFalse(t *testing.T) {
	cnf, _ := ToCNF(NewLeaf(False()), 0)
	if !cnf.IsFalse() {
		t.Errorf("cnf = %v", cnf)
	}
	cnf, _ = ToCNF(NewLeaf(True()), 0)
	if !cnf.IsTrue() {
		t.Errorf("cnf = %v", cnf)
	}
}

func TestCNFColumns(t *testing.T) {
	e := NewAnd(leafP("T.v", Le, 5), NewLeaf(Cols("T.u", Eq, "S.u")))
	cnf, _ := ToCNF(e, 0)
	cols := cnf.Columns()
	if len(cols) != 3 || cols[0] != "S.u" || cols[1] != "T.u" || cols[2] != "T.v" {
		t.Errorf("columns = %v", cols)
	}
}

// --- property tests: CNF preserves Boolean semantics ---

// evalExpr evaluates an expression over an assignment of column values.
func evalExpr(e Expr, env map[string]float64) bool {
	switch x := e.(type) {
	case *Leaf:
		return evalPred(x.P, env)
	case *Not:
		return !evalExpr(x.Kid, env)
	case *And:
		for _, k := range x.Kids {
			if !evalExpr(k, env) {
				return false
			}
		}
		return true
	case *Or:
		for _, k := range x.Kids {
			if evalExpr(k, env) {
				return true
			}
		}
		return false
	}
	return false
}

func evalPred(p Pred, env map[string]float64) bool {
	switch p.Kind {
	case TruePred:
		return true
	case FalsePred:
		return false
	case ColumnColumn:
		return cmpFloat(env[p.Column], p.Op, env[p.Column2])
	default:
		return cmpFloat(env[p.Column], p.Op, p.Val.Num)
	}
}

func cmpFloat(a float64, op Op, b float64) bool {
	switch op {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Ne:
		return a != b
	}
	return false
}

func evalCNF(c CNF, env map[string]float64) bool {
	for _, cl := range c {
		sat := false
		for _, p := range cl {
			if evalPred(p, env) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

var propCols = []string{"a", "b", "c"}

func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		col := propCols[r.Intn(len(propCols))]
		op := Op(r.Intn(6))
		return leafP(col, op, float64(r.Intn(7)))
	}
	switch r.Intn(3) {
	case 0:
		return NewAnd(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return NewOr(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return NewNot(randExpr(r, depth-1))
	}
}

func randEnv(r *rand.Rand) map[string]float64 {
	env := make(map[string]float64, len(propCols))
	for _, c := range propCols {
		env[c] = float64(r.Intn(9)) - 1
	}
	return env
}

func TestPropCNFEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		cnf, trunc := ToCNF(e, 0)
		if trunc {
			return true // cap disabled, should never truncate
		}
		for i := 0; i < 20; i++ {
			env := randEnv(r)
			if evalExpr(e, env) != evalCNF(cnf, env) {
				t.Logf("expr = %s", ExprString(e))
				t.Logf("cnf  = %s", cnf)
				t.Logf("env  = %v", env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropNNFEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 5)
		n := ToNNF(e)
		for i := 0; i < 20; i++ {
			env := randEnv(r)
			if evalExpr(e, env) != evalExpr(n, env) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropConsolidateEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randExpr(r, 4)
		cnf, _ := ToCNF(e, 0)
		cons := Consolidate(cnf)
		for i := 0; i < 20; i++ {
			env := randEnv(r)
			if evalCNF(cnf, env) != evalCNF(cons, env) {
				t.Logf("cnf  = %s", cnf)
				t.Logf("cons = %s", cons)
				t.Logf("env  = %v", env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
