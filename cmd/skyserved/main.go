// Command skyserved runs the online access-area mining service: it ingests
// query-log records over HTTP, extracts access areas through the streaming
// pipeline with a warm template cache, re-clusters them in epochs, and
// serves live Table-1-style reports.
//
// Usage:
//
//	skyserved [-addr :8080] [-eps 0.06] [-minpts 8] [-snapshot state.json]
//	          [-wal-dir wal] [-debug-addr :6060] [-shards N] [-traffic]
//	          [-role coordinator|shard -peers ...]
//
// Endpoints:
//
//	POST /ingest    JSON array, object, or NDJSON stream of records
//	POST /flush     drain the queue and re-cluster now
//	POST /snapshot  persist state now
//	POST /query     execute a SELECT via the semantic result cache
//	POST /remine    mine a historical [from,to) record-time window from the
//	                WAL (optional relation/fingerprint filters; -wal-dir)
//	GET  /report    latest clustering (?format=text|csv|json, ?top=N,
//	                ETag/If-None-Match; with -traffic, ?class=bot|human|admin
//	                serves one traffic class's slice)
//	GET  /drift     per-class interest-drift event log (-traffic)
//	GET  /interfaces  top-K mined query interfaces (-traffic, ?top=N)
//	GET  /stats     cumulative pipeline statistics
//	GET  /metrics   ingest/cache/epoch/semantic-cache counters
//	                (?format=prom for Prometheus exposition)
//	GET  /debug/slowlog  top-K slowest statements by fingerprint
//	GET  /healthz   readiness
//
// Topologies (one binary, three roles):
//
//	-shards N       in-process sharding: N shard miners behind one
//	                relation-set router and merged /report, same process
//	-role shard     one shard node of a multi-node cluster (adds
//	                GET /shard/result for the coordinator)
//	-role coordinator -peers http://h1:8081,http://h2:8081
//	                routes /ingest to the peer shards and serves the merged
//	                /report, /stats, /metrics, /shard/status
//
// With -debug-addr a second listener serves net/http/pprof under
// /debug/pprof/ plus the same /metrics and /debug/slowlog views.
//
// Drive it with loggen:
//
//	skyserved -addr :8080 &
//	loggen -n 20000 -replay -rate 2000 -conns 4 -url http://localhost:8080/ingest
//	curl -s -X POST http://localhost:8080/flush
//	curl -s http://localhost:8080/report
//
// After the first epoch, POST /query answers statements from the mined
// interest regions when containment proves it sound (X-Cache: HIT), falling
// back to direct execution otherwise:
//
//	curl -s -X POST --data 'SELECT objid FROM Photoz WHERE objid BETWEEN 1 AND 9' \
//	    http://localhost:8080/query
//
// On SIGINT/SIGTERM the server drains in-flight extraction, runs a final
// epoch and (with -snapshot) persists state for a replay-free restart; the
// in-process shard topology writes one snapshot per shard (state.0.json,
// state.1.json, ...) plus the router assignment (state.json.router).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/skyserver"
	"repro/internal/traffic"
)

// newHTTPServer applies the shared listener hardening: a slowloris client
// cannot hold a connection open with a dribbling header, and idle keep-alive
// connections are reaped.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// shardSnapshotPath derives shard i's snapshot path from the base by
// inserting the index before the extension: state.json → state.2.json.
func shardSnapshotPath(base string, i int) string {
	if base == "" {
		return ""
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + strconv.Itoa(i) + ext
}

// shardWALDir derives shard i's WAL directory from the base: each
// in-process shard owns its own log (wal → wal/shard-2).
func shardWALDir(base string, i int) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, "shard-"+strconv.Itoa(i))
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eps := flag.Float64("eps", 0.06, "DBSCAN eps")
	autoEps := flag.Bool("autoeps", false, "derive eps from the k-distance knee each epoch")
	minPts := flag.Int("minpts", 8, "DBSCAN minPts (weighted by query multiplicity)")
	mode := flag.String("mode", "endpoint", "d_pred mode: endpoint or literal")
	workers := flag.Int("workers", 0, "extraction/clustering parallelism (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "sampling seed")
	rows := flag.Int("rows", 2000, "synthetic database rows per table (access(a) seeding + coverage)")
	queue := flag.Int("queue", 4096, "ingest queue capacity (full queue answers 429)")
	batch := flag.Int("batch", 256, "max records per pipeline batch")
	epochAreas := flag.Int("epoch-areas", 512, "new distinct areas that trigger a re-clustering epoch")
	epochInterval := flag.Duration("epoch-interval", 15*time.Second, "re-cluster on this timer when new areas are pending (0 = off)")
	maxLag := flag.Int("max-lag", 0, "admission bound: 429 while this many new areas await mining (0 = off)")
	snapshot := flag.String("snapshot", "", "snapshot path (restored on start, written on shutdown; empty = none)")
	walDir := flag.String("wal-dir", "", "durable ingest WAL directory: /ingest acks only after group-commit fsync, restart replays the tail past the snapshot, POST /remine mines historical windows (empty = off; in-process shards get wal-dir/shard-N each)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size (0 = 8 MiB default)")
	walWindow := flag.Int64("wal-window", 0, "also rotate WAL segments every N logical seconds of record time, for finer /remine segment skipping (0 = size-only)")
	top := flag.Int("top", 0, "default cluster cap for /report (0 = all)")
	queryVerify := flag.Bool("query-verify", false, "check every cache-served /query result against direct execution (oracle; slow)")
	cacheBudget := flag.Int64("cache-budget", 0, "semantic-cache resident-bytes budget: regions admitted best-heat-first, coldest evicted under pressure (0 = unlimited)")
	cacheTTL := flag.Duration("cache-ttl", 0, "per-region staleness bound: unchanged regions keep their store across epochs while younger than this, older stores miss as stale (0 = rebuild every epoch)")
	cacheComposeMax := flag.Int("cache-compose-max", 4, "max regions a composed /query answer may union (negative = disable composition)")
	deltaEpochs := flag.Bool("delta-epochs", false, "cluster only the delta between epochs (representatives + noise + new areas); flush/shutdown always re-cluster fully")
	anchorEvery := flag.Int("anchor-every", 8, "with -delta-epochs, run a full re-cluster every Nth epoch")
	drain := flag.Duration("drain", time.Minute, "graceful-shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "debug listener for pprof/metrics/slowlog (empty = off)")
	shards := flag.Int("shards", 1, "in-process shard miners behind one router (1 = unsharded)")
	warmup := flag.Int("warmup", 0, "router staging horizon in area-bearing records before keys bind to shards (0 = default 1024, negative = bind on first sight)")
	role := flag.String("role", "", "multi-node role: coordinator or shard (empty = standalone)")
	peers := flag.String("peers", "", "comma-separated shard base URLs (coordinator role)")
	trafficOn := flag.Bool("traffic", false, "classify ingest into bot/human/admin and mine per class: adds /report?class=, /drift and /interfaces (a coordinator assumes its shard peers also run -traffic)")
	trafficOverrides := flag.String("traffic-overrides", "", "comma-separated user=class pins for known crawlers and admin accounts, e.g. sdssbot=bot,dba=admin")
	flag.Parse()

	dmode := distance.ModeEndpoint
	if *mode == "literal" {
		dmode = distance.ModePaperLiteral
	}

	sharded := *shards > 1 || *role == "coordinator"
	if sharded && *autoEps {
		fmt.Fprintln(os.Stderr, "skyserved: -autoeps is incompatible with sharding: merge exactness needs one fixed eps on every shard")
		os.Exit(1)
	}
	if *role != "" && *role != "coordinator" && *role != "shard" {
		fmt.Fprintf(os.Stderr, "skyserved: unknown -role %q (want coordinator or shard)\n", *role)
		os.Exit(1)
	}
	if *role == "coordinator" && *peers == "" {
		fmt.Fprintln(os.Stderr, "skyserved: -role coordinator needs -peers")
		os.Exit(1)
	}

	var trafficCfg *traffic.Config
	if *trafficOn {
		trafficCfg = &traffic.Config{}
		if *trafficOverrides != "" {
			trafficCfg.Overrides = make(map[string]string)
			for _, pair := range strings.Split(*trafficOverrides, ",") {
				user, cls, ok := strings.Cut(strings.TrimSpace(pair), "=")
				if !ok || user == "" || !traffic.ValidClass(cls) {
					fmt.Fprintf(os.Stderr, "skyserved: bad -traffic-overrides entry %q (want user=bot|human|admin)\n", pair)
					os.Exit(1)
				}
				trafficCfg.Overrides[user] = cls
			}
		}
	}

	minerCfg := func(stats *schema.Stats) core.Config {
		return core.Config{
			Schema: skyserver.Schema(), Stats: stats,
			Eps: *eps, MinPts: *minPts, AutoEps: *autoEps,
			Mode: dmode, Seed: *seed, Workers: *workers,
			DeltaEpochs: *deltaEpochs, FullReclusterEvery: *anchorEvery,
		}
	}

	// What to serve, and how to stop it, by topology.
	var handler http.Handler
	var registry *obs.Registry
	var shutdown func(context.Context) error

	switch {
	case *role == "coordinator":
		// Pure router/merger: no local miner, no local database beyond the
		// synthetic coverage source for the merged report.
		db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: *rows, Seed: 1})
		peerList := strings.Split(*peers, ",")
		nodes := make([]shard.Node, len(peerList))
		for i, p := range peerList {
			nodes[i] = shard.NewHTTPNode(fmt.Sprintf("shard-%d", i), strings.TrimSpace(p), nil)
		}
		router := shard.NewRouter(len(nodes), skyserver.Schema(), 0, nil, *warmup)
		statePath := ""
		if *snapshot != "" {
			statePath = *snapshot + ".router"
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Router:          router,
			Nodes:           nodes,
			QueueSize:       *queue,
			BatchSize:       *batch,
			Eps:             *eps,
			Coverage:        db,
			ReportTop:       *top,
			Traffic:         *trafficOn,
			RouterStatePath: statePath,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserved: %v\n", err)
			os.Exit(1)
		}
		coord.SeedMerge()
		handler = coord.Handler()
		shutdown = func(ctx context.Context) error { return coord.Close() }
		log.Printf("skyserved: coordinator over %d shards: %s", len(nodes), *peers)

	case *shards > 1:
		// In-process sharding: N shard servers share one stats registry (the
		// access(a) observations commute) and one template cache (warmed by
		// the router), so the merged report is byte-identical to a single
		// batch mine over the same records.
		db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: *rows, Seed: 1})
		stats := schema.NewStats()
		skyserver.SeedStats(db, stats)
		tcache := &extract.TemplateCache{}
		router := shard.NewRouter(*shards, skyserver.Schema(), 0, tcache, *warmup)
		nodes := make([]shard.Node, *shards)
		for i := 0; i < *shards; i++ {
			s, err := serve.NewServer(serve.Config{
				Miner:            minerCfg(stats),
				QueueSize:        *queue,
				BatchSize:        *batch,
				EpochAreas:       *epochAreas,
				EpochInterval:    *epochInterval,
				MaxMiningLag:     *maxLag,
				Templates:        tcache,
				SnapshotPath:     shardSnapshotPath(*snapshot, i),
				WALDir:           shardWALDir(*walDir, i),
				WALSegmentBytes:  *walSegBytes,
				WALSegmentWindow: *walWindow,
				Traffic:          trafficCfg,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "skyserved: shard %d: %v\n", i, err)
				os.Exit(1)
			}
			nodes[i] = shard.NewLocalNode(fmt.Sprintf("shard-%d", i), s)
		}
		statePath := ""
		if *snapshot != "" {
			statePath = *snapshot + ".router"
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Router:          router,
			Nodes:           nodes,
			QueueSize:       *queue,
			BatchSize:       *batch,
			Eps:             *eps,
			Coverage:        db,
			ReportTop:       *top,
			Traffic:         *trafficOn,
			RouterStatePath: statePath,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserved: %v\n", err)
			os.Exit(1)
		}
		coord.SeedMerge()
		handler = coord.Handler()
		shutdown = func(ctx context.Context) error { return coord.Close() }
		log.Printf("skyserved: %d in-process shards", *shards)

	default:
		// Standalone server, or one shard node of a multi-node cluster.
		db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: *rows, Seed: 1})
		stats := schema.NewStats()
		skyserver.SeedStats(db, stats)
		cfg := serve.Config{
			Miner:            minerCfg(stats),
			Coverage:         db,
			QueueSize:        *queue,
			BatchSize:        *batch,
			EpochAreas:       *epochAreas,
			EpochInterval:    *epochInterval,
			MaxMiningLag:     *maxLag,
			SnapshotPath:     *snapshot,
			WALDir:           *walDir,
			WALSegmentBytes:  *walSegBytes,
			WALSegmentWindow: *walWindow,
			ReportTop:        *top,
			QueryDB:          db,
			QueryVerify:      *queryVerify,
			CacheBudget:      *cacheBudget,
			CacheTTL:         *cacheTTL,
			CacheComposeMax:  *cacheComposeMax,
			Traffic:          trafficCfg,
		}
		if *role == "shard" {
			// A shard mines a routed slice: coverage and the semantic query
			// cache belong to the coordinator's merged view.
			cfg.Coverage = nil
			cfg.QueryDB = nil
		}
		s, err := serve.NewServer(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyserved: %v\n", err)
			os.Exit(1)
		}
		if *role == "shard" {
			handler = shard.ResultHandler(s)
			log.Printf("skyserved: shard node (coordinator fetches /shard/result)")
		} else {
			handler = s.Handler()
		}
		registry = s.Registry()
		shutdown = s.Shutdown
	}

	httpSrv := newHTTPServer(*addr, handler)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("skyserved: listening on %s", *addr)

	// Debug listener: pprof plus the Prometheus and slowlog views, kept off
	// the service port so profiling is never exposed to ingest clients.
	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if registry != nil {
				_ = registry.WritePrometheus(w)
			}
			_ = obs.Default().WritePrometheus(w)
		})
		mux.Handle("/debug/slowlog", handler)
		debugSrv = newHTTPServer(*debugAddr, mux)
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("skyserved: debug listener: %v", err)
			}
		}()
		log.Printf("skyserved: debug (pprof) on %s", *debugAddr)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("skyserved: %v — draining (budget %s)", sig, *drain)
	case err := <-errCh:
		log.Printf("skyserved: listener: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if debugSrv != nil {
		_ = debugSrv.Shutdown(ctx)
	}
	_ = httpSrv.Shutdown(ctx)
	if err := shutdown(ctx); err != nil && err != context.DeadlineExceeded {
		log.Printf("skyserved: shutdown: %v", err)
	}
	log.Printf("skyserved: stopped")
}
