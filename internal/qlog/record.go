// Package qlog provides query-log infrastructure: the record format,
// CSV/JSONL serialisation, a staged extraction pipeline with the per-stage
// timing statistics of Section 6.6, and a stream monitor that notifies the
// operator when new predicates or query types appear in an incoming stream
// (the extension sketched in Section 4's introduction).
package qlog

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sqlparser"
)

// Record is one query-log line.
type Record struct {
	Seq  int    `json:"seq"`
	Time int64  `json:"time"`
	User string `json:"user"`
	SQL  string `json:"sql"`

	// Precomputed fingerprint pass, populated by an upstream stage that has
	// already lexed the statement (WAL admission fingerprints every record
	// for the segment index). When FPValid is set the pipeline reuses FP and
	// Lits instead of lexing SQL a second time. Never serialised: a decoded
	// or replayed record re-derives them.
	// Class is the traffic class the record belongs to ("bot", "human",
	// "admin", or "" when unclassified). Explicit tags survive JSON ingest
	// and the WAL; untagged records are classified at admission when the
	// serving layer has traffic mining enabled. CSV stays the 4-column
	// paper-log format, so the class never round-trips through WriteCSV.
	Class string `json:"class,omitempty"`

	FPValid bool                `json:"-"`
	FP      uint64              `json:"-"`
	Lits    []sqlparser.Literal `json:"-"`
}

// WriteCSV serialises records with a header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seq", "time", "user", "sql"}); err != nil {
		return err
	}
	for _, r := range recs {
		if err := cw.Write([]string{
			strconv.Itoa(r.Seq), strconv.FormatInt(r.Time, 10), r.User, r.SQL,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	var out []Record
	if err := ReadCSVStream(context.Background(), r, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadCSVStream parses records written by WriteCSV one row at a time,
// invoking fn for each without materialising the whole log. A non-nil error
// from fn aborts the read and is returned unchanged. Cancelling ctx aborts
// before the next row and returns ctx.Err(), so a shutting-down server
// stops mid-file instead of draining it.
func ReadCSVStream(ctx context.Context, r io.Reader, fn func(Record) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	done := ctx.Done()
	for i := 0; ; i++ {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if i == 0 && row[0] == "seq" {
			continue // header
		}
		seq, err := strconv.Atoi(row[0])
		if err != nil {
			return fmt.Errorf("qlog: row %d: bad seq %q", i, row[0])
		}
		ts, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return fmt.Errorf("qlog: row %d: bad time %q", i, row[1])
		}
		if err := fn(Record{Seq: seq, Time: ts, User: row[2], SQL: row[3]}); err != nil {
			return err
		}
	}
}

// WriteJSONL serialises records one JSON object per line.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses JSONL records.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	if err := ReadJSONLStream(context.Background(), r, func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadJSONLStream parses JSONL records one line at a time, invoking fn for
// each without materialising the whole log. A non-nil error from fn aborts
// the read and is returned unchanged. Cancelling ctx aborts before the next
// line and returns ctx.Err().
func ReadJSONLStream(ctx context.Context, r io.Reader, fn func(Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	done := ctx.Done()
	line := 0
	for sc.Scan() {
		line++
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("qlog: line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}
