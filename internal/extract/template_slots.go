package extract

import (
	"sort"

	"repro/internal/predicate"
)

// SlotBinding describes how one literal slot of a cached template is used
// by the template's constraint: which canonical column it constrains, under
// which comparison operator, and whether the literal is numeric or string.
// It is the read-only introspection the /interfaces endpoint renders
// parameterized query interfaces from.
type SlotBinding struct {
	// Slot is the 1-based lexer ordinal of the literal (Literal index
	// Slot-1 in the statement's literal slice).
	Slot int
	// Column is the canonical "Relation.column" the slot constrains.
	Column string
	// Op is the comparison operator as SQL text ("<", ">=", "=", ...).
	Op string
	// Numeric reports whether the constraint value is numeric.
	Numeric bool
}

// SlotBindings walks the template's constraint and returns one binding per
// slot-tagged column-constant value, sorted by slot. Slots referenced more
// than once (a literal folded into several predicates by normalisation)
// report their first binding in expression order. Templates whose
// constraint carries no slotted values (constant-folded or approximate
// shapes) return nil.
func (t *AreaTemplate) SlotBindings() []SlotBinding {
	seen := make(map[int]SlotBinding)
	var order []int
	var walk func(e predicate.Expr)
	walk = func(e predicate.Expr) {
		switch x := e.(type) {
		case *predicate.Leaf:
			p := x.P
			if p.Kind != predicate.ColumnConstant || p.Val.Slot <= 0 {
				return
			}
			if _, ok := seen[p.Val.Slot]; ok {
				return
			}
			seen[p.Val.Slot] = SlotBinding{
				Slot:    p.Val.Slot,
				Column:  p.Column,
				Op:      p.Op.String(),
				Numeric: p.Val.Kind == predicate.NumberVal,
			}
			order = append(order, p.Val.Slot)
		case *predicate.Not:
			walk(x.Kid)
		case *predicate.And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *predicate.Or:
			for _, k := range x.Kids {
				walk(k)
			}
		}
	}
	walk(t.constraint)
	if len(order) == 0 {
		return nil
	}
	sort.Ints(order)
	out := make([]SlotBinding, 0, len(order))
	for _, s := range order {
		out = append(out, seen[s])
	}
	return out
}
