package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// remineRequest is the POST /remine body: a [from,to) record-time window,
// optionally narrowed to a relation set and/or a statement-fingerprint
// family. Fingerprints are hex (as /debug/slowlog prints them).
type remineRequest struct {
	From         int64    `json:"from"`
	To           int64    `json:"to"`
	Relations    []string `json:"relations,omitempty"`
	Fingerprints []string `json:"fingerprints,omitempty"`
	Top          int      `json:"top,omitempty"`
}

// handleRemine mines a historical time window straight from the WAL: the
// window's records stream through a throwaway miner built on a copy of the
// live registry (the live service is untouched — no counters move, no epoch
// runs) and the response is the Table-1-style report for just that window.
// The segment index keeps the read proportional to the window, not the log:
// X-Remine-Segments-Scanned/Skipped report the skip win.
func (s *Server) handleRemine(w http.ResponseWriter, r *http.Request) {
	sp := remineStage.Start()
	defer sp.End()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.wal == nil {
		http.Error(w, "re-mining not configured (no -wal-dir)", http.StatusConflict)
		return
	}
	format, err := NegotiateFormat(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req remineRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.To == 0 {
		req.To = 1<<63 - 1 // open-ended: everything from From onward
	}
	if req.From >= req.To {
		http.Error(w, "empty window: from must be below to", http.StatusBadRequest)
		return
	}
	fps, err := parseFingerprints(req.Fingerprints)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	res, stats, err := s.Remine(req.From, req.To, req.Relations, fps)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Remine-Records", strconv.Itoa(stats.Records))
	w.Header().Set("X-Remine-Segments-Scanned", strconv.Itoa(stats.SegmentsScanned))
	w.Header().Set("X-Remine-Segments-Skipped", strconv.Itoa(stats.SegmentsSkipped))
	w.Header().Set("Content-Type", contentTypes[format])
	_ = report.Write(w, res, format, report.Options{Top: req.Top, Coverage: s.cfg.Coverage != nil})
}

// parseFingerprints decodes hex statement fingerprints.
func parseFingerprints(hexes []string) ([]uint64, error) {
	if len(hexes) == 0 {
		return nil, nil
	}
	fps := make([]uint64, 0, len(hexes))
	for _, h := range hexes {
		v, err := strconv.ParseUint(strings.TrimPrefix(h, "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fingerprint %q: %w", h, err)
		}
		fps = append(fps, v)
	}
	return fps, nil
}

// RemineStats describes what one re-mine read from the log.
type RemineStats struct {
	Records         int
	SegmentsScanned int
	SegmentsSkipped int
}

// Remine batch-mines the WAL records whose time lies in [from, to),
// optionally filtered to statements touching only the given relation set
// and/or matching one of the given fingerprints. It builds a throwaway
// miner over a copy of the live access(a) registry, so the result is
// reproducible against batch-mining the same records while the live
// service keeps serving unperturbed.
func (s *Server) Remine(from, to int64, relations []string, fps []uint64) (*core.Result, RemineStats, error) {
	var rst RemineStats
	var recs []qlog.Record
	wst, err := s.wal.ReadWindow(from, to, fps, func(rec qlog.Record, fp uint64) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, rst, err
	}
	rst.Records = wst.Records
	rst.SegmentsScanned = wst.SegmentsScanned
	rst.SegmentsSkipped = wst.SegmentsSkipped

	// A registry copy: the throwaway miner must see the live access(a)
	// state (so distance profiles match the service's) without its own
	// extraction pass mutating it.
	statsCopy := schema.NewStats()
	statsCopy.RestoreSnapshot(s.miner.Stats().Snapshot())
	cfg := s.cfg.Miner
	cfg.Stats = statsCopy
	m := core.NewMiner(cfg)

	if len(relations) == 0 {
		return m.MineRecords(recs), rst, nil
	}

	// Relation-set filter: extract first, keep only areas whose relation
	// set is covered by the requested one, then cluster the survivors.
	want := make(map[string]struct{}, len(relations))
	for _, rel := range relations {
		want[s.canonicalRelationName(rel)] = struct{}{}
	}
	pipe := &qlog.Pipeline{
		Extractor: &extract.Extractor{Schema: cfg.Schema, PredCap: cfg.PredCap, Stats: statsCopy},
		Workers:   cfg.Workers,
		NoCache:   cfg.DisableTemplateCache,
	}
	areaRecs, _ := pipe.Run(recs)
	kept := areaRecs[:0]
	for _, ar := range areaRecs {
		if relationsCovered(ar.Area.Relations, want) {
			kept = append(kept, ar)
		}
	}
	return m.MineAreas(kept), rst, nil
}

// relationsCovered reports whether every relation of an area is in want.
func relationsCovered(rels []string, want map[string]struct{}) bool {
	if len(rels) == 0 {
		return false
	}
	for _, rel := range rels {
		if _, ok := want[rel]; !ok {
			return false
		}
	}
	return true
}

// canonicalRelationName normalises a user-supplied relation name the same
// way extraction does: schema prefixes stripped, capitalisation resolved
// against the schema.
func (s *Server) canonicalRelationName(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if sch := s.cfg.Miner.Schema; sch != nil {
		return sch.CanonicalTable(name)
	}
	return name
}

// FingerprintsFor is a convenience for tests and tooling: the fingerprints
// of the given statements (0 and false for statements that do not lex).
func FingerprintsFor(stmts []string) []uint64 {
	set := make(map[uint64]struct{}, len(stmts))
	for _, sql := range stmts {
		if fp, err := sqlparser.FingerprintOnly(sql); err == nil {
			set[fp] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for fp := range set {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
