// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index E1-E10). Each benchmark runs
// the corresponding experiment end-to-end per iteration and reports
// domain metrics (clusters recovered, extraction coverage, throughput) next
// to the usual ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// The synthetic scale per iteration is kept moderate (3-5k queries) so the
// full suite completes quickly; cmd/benchreport runs the same experiments
// at the default 20k scale (or any -scale).
package skyaccess_test

import (
	"testing"

	"repro/internal/dbscan"
	"repro/internal/distance"
	"repro/internal/experiments"
	"repro/internal/extract"
	"repro/internal/predicate"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/skyserver"
	"repro/internal/sqlparser"
)

const benchScale = 4000

// E1: Table 1 — the 24 aggregated access areas.
func BenchmarkTable1(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var matched int
	for i := 0; i < b.N; i++ {
		matched = env.RunTable1().Matched
	}
	b.ReportMetric(float64(matched), "clusters-recovered/24")
}

// E2-E4: Figures 1(a)-(c) — content vs access boxes per subspace.
func BenchmarkFigure1a(b *testing.B) { benchFigure(b, 'a') }
func BenchmarkFigure1b(b *testing.B) { benchFigure(b, 'b') }
func BenchmarkFigure1c(b *testing.B) { benchFigure(b, 'c') }

func benchFigure(b *testing.B, which byte) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var boxes int
	for i := 0; i < b.N; i++ {
		boxes = len(env.RunFigure1(which).Access)
	}
	b.ReportMetric(float64(boxes), "access-boxes")
}

// E5: Section 6.1 extraction coverage (99.46% in the paper).
func BenchmarkExtractionCoverage(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = env.RunCoverage().Stats.Coverage()
	}
	b.ReportMetric(100*cov, "coverage-%")
}

// E6: Section 6.4 — OLAPClus exact matching shatters the equality cluster.
func BenchmarkOLAPClusExact(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var r *experiments.OLAPClusResult
	for i := 0; i < b.N; i++ {
		r = env.RunOLAPClusExact()
	}
	b.ReportMetric(float64(r.ExactClusters), "exact-clusters")
	b.ReportMetric(float64(r.OursClusters), "our-clusters")
}

// E7: Section 6.5 — d_conj on raw predicates breaks transformed clusters.
func BenchmarkOLAPClusRaw(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var broken int
	for i := 0; i < b.N; i++ {
		broken = len(env.RunOLAPClusRaw().Broken)
	}
	b.ReportMetric(float64(broken), "broken-templates")
}

// E8: Section 6.6 — single-threaded pipeline throughput and stage timings
// (paper: ~2,200 q/s on an i5-750).
func BenchmarkPipelineEfficiency(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var qps float64
	for i := 0; i < b.N; i++ {
		qps = env.RunEfficiency().Throughput
	}
	b.ReportMetric(qps, "queries/s")
}

// E9: Section 6.6 — extraction vs re-issuing every query.
func BenchmarkRequery(b *testing.B) {
	env := experiments.NewEnvRows(600, 42, 400) // re-querying cost scales with rows²; keep per-iteration cost sane
	b.ResetTimer()
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = env.RunRequery().Speedup
	}
	b.ReportMetric(speedup, "requery-slowdown-x")
}

// E10: ablation — endpoint vs paper-literal d_pred (DESIGN.md §2).
func BenchmarkAblationDistanceMode(b *testing.B) {
	env := experiments.NewEnv(benchScale, 42)
	b.ResetTimer()
	var r *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		r = env.RunAblation()
	}
	b.ReportMetric(float64(r.EndpointMatched), "endpoint-recovered/24")
	b.ReportMetric(float64(r.LiteralMatched), "literal-recovered/24")
}

// Section 6.6's CNF pathology: conversion cost with and without the
// 35-predicate cap on a 2^n-clause query shape. The capped variant
// truncates the disjunction's tail to TRUE (collapsing the OR — a sound
// over-approximation); the uncapped variant pays the exponential
// distribution, which is why n is kept at 12 here (the paper saw runaways
// "in the range of hours" on real 35+-predicate queries).
func BenchmarkCNFBlowupCapped(b *testing.B) {
	sel := mustParse(b, skyserver.PathologicalQuery(40))
	ex := extract.New(skyserver.Schema()) // default cap 35
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCNFBlowupUncapped(b *testing.B) {
	sel := mustParse(b, skyserver.PathologicalQuery(12))
	ex := extract.New(skyserver.Schema())
	ex.PredCap = -1 // disabled: full exponential distribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks ---

func mustParse(b *testing.B, sql string) *sqlparser.SelectStatement {
	b.Helper()
	sel, err := sqlparser.ParseSelect(sql)
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

func BenchmarkParseSimple(b *testing.B) {
	const q = "SELECT u FROM T WHERE u >= 1 AND u <= 8 AND s > 5"
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.ParseSelect(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNested(b *testing.B) {
	const q = `SELECT * FROM T WHERE T.u > 7 AND EXISTS
		(SELECT * FROM S WHERE S.u = T.u AND S.v < 3 AND EXISTS
			(SELECT * FROM R WHERE R.v = S.v AND R.x < 2))`
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.ParseSelect(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractSimple(b *testing.B) {
	ex := extract.New(skyserver.Schema())
	sel := mustParse(b, "SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200 AND class = 'star'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractAggregate(b *testing.B) {
	ex := extract.New(skyserver.Schema())
	sel := mustParse(b, "SELECT plate, SUM(mjd) FROM SpecObjAll WHERE mjd < 52000 GROUP BY plate HAVING SUM(mjd) > 100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Extract(sel); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistanceProfiled(b *testing.B) {
	stats := schema.NewStats()
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 200, Seed: 1})
	skyserver.SeedStats(db, stats)
	ex := extract.New(skyserver.Schema())
	a1, _ := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200 AND mjd < 52000")
	a2, _ := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE plate BETWEEN 300 AND 2900 AND mjd < 52100")
	m := distance.New(stats)
	p1, p2 := m.Profile(a1), m.Profile(a2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ProfileDistance(p1, p2)
	}
}

func BenchmarkDBSCAN2k(b *testing.B) {
	pts := make([]float64, 2000)
	for i := range pts {
		pts[i] = float64(i%40) + float64(i)/10000
	}
	dist := func(i, j int) float64 {
		d := pts[i] - pts[j]
		if d < 0 {
			return -d
		}
		return d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dbscan.Cluster(len(pts), dist, dbscan.Config{Eps: 0.5, MinPts: 4})
	}
}

func BenchmarkPipelineParallel(b *testing.B) {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: 2000, Seed: 42})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, User: e.User, SQL: e.SQL}
	}
	p := &qlog.Pipeline{Extractor: extract.New(skyserver.Schema())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(recs)
	}
	b.SetBytes(0)
}

func BenchmarkConsolidate(b *testing.B) {
	e := predicate.NewAnd(
		predicate.NewLeaf(predicate.CC("a", predicate.Ge, predicate.Number(1))),
		predicate.NewLeaf(predicate.CC("a", predicate.Ge, predicate.Number(3))),
		predicate.NewLeaf(predicate.CC("a", predicate.Le, predicate.Number(9))),
		predicate.NewOr(
			predicate.NewLeaf(predicate.CC("b", predicate.Lt, predicate.Number(2))),
			predicate.NewLeaf(predicate.CC("b", predicate.Lt, predicate.Number(5))),
		),
	)
	cnf, _ := predicate.ToCNF(e, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = predicate.Consolidate(cnf)
	}
}

// Pivot-pruning ablation: plain O(n²) region queries vs LAESA pivots on the
// same metric workload.
func BenchmarkDBSCANPlain5k(b *testing.B)  { benchPivot(b, false) }
func BenchmarkDBSCANPivots5k(b *testing.B) { benchPivot(b, true) }

func benchPivot(b *testing.B, pivots bool) {
	pts := make([]float64, 5000)
	for i := range pts {
		pts[i] = float64(i%80) + float64(i)/100000
	}
	dist := func(i, j int) float64 {
		d := pts[i] - pts[j]
		if d < 0 {
			return -d
		}
		return d
	}
	cfg := dbscan.Config{Eps: 0.5, MinPts: 4, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pivots {
			dbscan.ClusterWithPivots(len(pts), dist, cfg, 8)
		} else {
			dbscan.Cluster(len(pts), dist, cfg)
		}
	}
}

// §6.3 follow-up: per-cluster density contrast.
func BenchmarkDensityContrast(b *testing.B) {
	env := experiments.NewEnv(2000, 42)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(env.RunDensity().Contrasts)
	}
	b.ReportMetric(float64(n), "clusters-measured")
}
