package qlog

import (
	"sort"
	"strings"

	"repro/internal/sqlparser"
)

// Session groups the consecutive queries of one user separated by gaps of
// at most the configured timeout — the "Sessions" data structure of Singh
// et al. [23], whose five-year SkyServer traffic analysis the paper builds
// on. Session statistics also feed the test-vs-final query differentiation
// the paper's astronomer asked for (Section 6.3, future work; see
// ClassifyIntent).
type Session struct {
	User    string
	Start   int64
	End     int64
	Records []Record
}

// Duration returns the session length in logical seconds.
func (s *Session) Duration() int64 { return s.End - s.Start }

// Sessionize splits records into per-user sessions using gapSeconds as the
// inactivity timeout ([23] used 30 minutes for web sessions). Records need
// not be sorted; output sessions are ordered by start time, queries within
// a session by time. A non-positive gap is clamped to zero, meaning any
// positive inter-query gap starts a new session while identical timestamps
// stay together — the only consistent reading of "no tolerated gap".
func Sessionize(recs []Record, gapSeconds int64) []*Session {
	if len(recs) == 0 {
		return nil
	}
	if gapSeconds < 0 {
		gapSeconds = 0
	}
	byUser := make(map[string][]Record)
	for _, r := range recs {
		byUser[r.User] = append(byUser[r.User], r)
	}
	var out []*Session
	for user, urecs := range byUser {
		if len(urecs) == 0 {
			// Guard the final flush: a session is only ever emitted with at
			// least one record, so downstream Duration()/profile code never
			// sees an empty session.
			continue
		}
		sort.Slice(urecs, func(i, j int) bool { return urecs[i].Time < urecs[j].Time })
		var cur *Session
		for _, r := range urecs {
			if cur == nil || r.Time-cur.End > gapSeconds {
				cur = &Session{User: user, Start: r.Time, End: r.Time}
				out = append(out, cur)
			}
			cur.Records = append(cur.Records, r)
			cur.End = r.Time
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].User < out[j].User
	})
	return out
}

// Skeleton reduces a statement to its template: constants are replaced by
// placeholders, whitespace and keyword case are normalised. Two queries
// issued by a bot from the same form string share a skeleton — the
// "Templates" of [23]. It delegates to sqlparser.Skeleton, which shares one
// token-normalisation pass with sqlparser.Fingerprint, so the session
// templates and the extraction cache's fingerprint classes cannot drift:
// equal fingerprints imply equal skeletons.
func Skeleton(sql string) string {
	sk, err := sqlparser.Skeleton(sql)
	if err != nil {
		// Unlexable statements are their own skeleton.
		return strings.Join(strings.Fields(sql), " ")
	}
	return sk
}

// UserProfile aggregates one user's activity for the bot/mortal
// categorisation of [23].
type UserProfile struct {
	User          string
	Queries       int
	Sessions      int
	Skeletons     int     // distinct query templates
	PeakPerMinute int     // maximum queries in any 60-second window
	SkeletonRatio float64 // Skeletons / Queries: low for bots
}

// Bot applies the [23]-style heuristic: high volume, few templates relative
// to volume, machine cadence.
func (p *UserProfile) Bot() bool {
	return p.Queries >= 50 && p.SkeletonRatio < 0.35 && p.PeakPerMinute >= 10
}

// ProfileUsers computes per-user profiles from the log.
func ProfileUsers(recs []Record, sessionGap int64) []*UserProfile {
	sessions := Sessionize(recs, sessionGap)
	type acc struct {
		queries   int
		sessions  int
		skeletons map[string]struct{}
		times     []int64
	}
	byUser := make(map[string]*acc)
	for _, s := range sessions {
		a, ok := byUser[s.User]
		if !ok {
			a = &acc{skeletons: make(map[string]struct{})}
			byUser[s.User] = a
		}
		a.sessions++
		for _, r := range s.Records {
			a.queries++
			a.skeletons[Skeleton(r.SQL)] = struct{}{}
			a.times = append(a.times, r.Time)
		}
	}
	var out []*UserProfile
	for user, a := range byUser {
		sort.Slice(a.times, func(i, j int) bool { return a.times[i] < a.times[j] })
		peak := 0
		lo := 0
		for hi := range a.times {
			for a.times[hi]-a.times[lo] >= 60 {
				lo++
			}
			if n := hi - lo + 1; n > peak {
				peak = n
			}
		}
		p := &UserProfile{
			User: user, Queries: a.queries, Sessions: a.sessions,
			Skeletons: len(a.skeletons), PeakPerMinute: peak,
		}
		if a.queries > 0 {
			p.SkeletonRatio = float64(len(a.skeletons)) / float64(a.queries)
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queries != out[j].Queries {
			return out[i].Queries > out[j].Queries
		}
		return out[i].User < out[j].User
	})
	return out
}

// Intent is the exploratory-vs-final classification the paper leaves as
// future work in Section 6.3 ("there might be 'test queries' ... and
// 'final queries'").
type Intent int

const (
	// TestQuery marks exploratory probes: tiny TOP/LIMIT caps, SELECT *
	// with no or trivial constraints, or early-session repeats.
	TestQuery Intent = iota
	// FinalQuery marks deliberate retrievals: specific projections with
	// substantive constraints and no tiny row cap.
	FinalQuery
)

func (i Intent) String() string {
	if i == TestQuery {
		return "test"
	}
	return "final"
}

// ClassifyIntent applies the heuristic: a query is exploratory when it caps
// output at a handful of rows, or projects * without meaningful
// constraints. Everything else counts as final. The heuristic is
// deliberately simple — the paper only sketches the distinction — but it is
// enough to separate "SELECT TOP 10 *" probes from shaped retrievals.
func ClassifyIntent(sel *sqlparser.SelectStatement) Intent {
	capN := -1.0
	if sel.Top != nil {
		capN = *sel.Top
	}
	if sel.Limit != nil {
		capN = *sel.Limit
	}
	if capN >= 0 && capN <= 100 {
		return TestQuery
	}
	starOnly := len(sel.Select) == 1 && sel.Select[0].Star
	preds := countPredicates(sel.Where)
	if starOnly && preds <= 1 {
		return TestQuery
	}
	if preds == 0 && sel.Where == nil && len(sel.GroupBy) == 0 {
		return TestQuery
	}
	return FinalQuery
}

func countPredicates(e sqlparser.Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case *sqlparser.BinaryExpr:
		switch x.Op {
		case "AND", "OR":
			return countPredicates(x.L) + countPredicates(x.R)
		default:
			return 1
		}
	case *sqlparser.UnaryExpr:
		return countPredicates(x.X)
	case *sqlparser.BetweenExpr, *sqlparser.InListExpr, *sqlparser.InSubqueryExpr,
		*sqlparser.ExistsExpr, *sqlparser.QuantifiedExpr, *sqlparser.LikeExpr,
		*sqlparser.IsNullExpr:
		return 1
	default:
		return 0
	}
}
