package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
	"repro/internal/schema"
)

func metricWithAccess(t *testing.T) *Metric {
	t.Helper()
	st := schema.NewStats()
	st.SeedNumericContent("T.a", interval.Closed(0, 5))
	st.SeedNumericContent("T.b", interval.Closed(0, 5))
	st.SeedNumericContent("T.u", interval.Closed(0, 100))
	st.SeedCategorical("S.class", []string{"STAR", "GALAXY", "QSO", "UNKNOWN"})
	return New(st)
}

func area(rels []string, cnf predicate.CNF) *extract.AccessArea {
	return &extract.AccessArea{Relations: rels, CNF: cnf, Exact: true}
}

func cc(col string, op predicate.Op, v float64) predicate.Pred {
	return predicate.CC(col, op, predicate.Number(v))
}

func TestDTables(t *testing.T) {
	m := metricWithAccess(t)
	if d := m.DTables([]string{"T"}, []string{"T"}); d != 0 {
		t.Errorf("same tables d = %v", d)
	}
	if d := m.DTables([]string{"T"}, []string{"S"}); d != 1 {
		t.Errorf("disjoint tables d = %v", d)
	}
	if d := m.DTables([]string{"T", "S"}, []string{"T"}); d != 0.5 {
		t.Errorf("subset tables d = %v", d)
	}
	// Corner case of §5.1: no tables at all => 0.
	if d := m.DTables(nil, nil); d != 0 {
		t.Errorf("empty tables d = %v", d)
	}
}

func TestPaperLiteralExample(t *testing.T) {
	// §5.2: p1 = a < 3, p2 = a > 2, access(a) = [0, 5] => 1/5 = 0.2.
	m := metricWithAccess(t)
	m.Mode = ModePaperLiteral
	d := m.DPred(cc("T.a", predicate.Lt, 3), cc("T.a", predicate.Gt, 2))
	if math.Abs(d-0.2) > 1e-12 {
		t.Errorf("literal d_pred = %v, want 0.2", d)
	}
	// Different-column example: a1 < 3, a2 > 2, access = [0,5] both
	// => (3*3)/(5*5) = 0.36.
	d = m.DPred(cc("T.a", predicate.Lt, 3), cc("T.b", predicate.Gt, 2))
	if math.Abs(d-0.36) > 1e-12 {
		t.Errorf("literal cross-column = %v, want 0.36", d)
	}
}

func TestEndpointModeIdentityAndSymmetry(t *testing.T) {
	m := metricWithAccess(t)
	p1 := cc("T.a", predicate.Lt, 3)
	if d := m.DPred(p1, p1); d != 0 {
		t.Errorf("identical preds d = %v, want 0", d)
	}
	p2 := cc("T.a", predicate.Gt, 2)
	if d1, d2 := m.DPred(p1, p2), m.DPred(p2, p1); d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestEndpointModeValues(t *testing.T) {
	m := metricWithAccess(t)
	// a < 3 => clipped [0,3); a > 2 => clipped (2,5]. Endpoint L∞:
	// max(|0-2|, |3-5|)/5 = 0.4.
	d := m.DPred(cc("T.a", predicate.Lt, 3), cc("T.a", predicate.Gt, 2))
	if math.Abs(d-0.4) > 1e-12 {
		t.Errorf("d = %v, want 0.4", d)
	}
	// Equality predicates: |c1 - c2| / W. objid-style chaining.
	d = m.DPred(cc("T.u", predicate.Eq, 10), cc("T.u", predicate.Eq, 15))
	if math.Abs(d-0.05) > 1e-12 {
		t.Errorf("point d = %v, want 0.05", d)
	}
	// Cross-column near-full predicates are close (both barely constrain).
	d = m.DPred(cc("T.a", predicate.Ge, 0), cc("T.b", predicate.Le, 5))
	if d > 0.01 {
		t.Errorf("cross-column full ranges d = %v, want ~0", d)
	}
	// Cross-column tiny predicates are far.
	d = m.DPred(cc("T.a", predicate.Eq, 1), cc("T.b", predicate.Eq, 2))
	if d < 0.99 {
		t.Errorf("cross-column points d = %v, want ~1", d)
	}
}

func TestCategoricalDistance(t *testing.T) {
	m := metricWithAccess(t)
	star := predicate.CC("S.class", predicate.Eq, predicate.Str("STAR"))
	galaxy := predicate.CC("S.class", predicate.Eq, predicate.Str("GALAXY"))
	if d := m.DPred(star, star); d != 0 {
		t.Errorf("same value d = %v", d)
	}
	if d := m.DPred(star, galaxy); d != 1 {
		t.Errorf("diff value d = %v", d)
	}
	// NE STAR covers 3 of 4 access values; vs EQ GALAXY (subset):
	// Jaccard distance = 1 - 1/3.
	neStar := predicate.CC("S.class", predicate.Ne, predicate.Str("STAR"))
	if d := m.DPred(neStar, galaxy); math.Abs(d-(1-1.0/3)) > 1e-12 {
		t.Errorf("ne vs eq d = %v", d)
	}
	// Paper-literal mode: |common| / |access| = 1/4.
	m.Mode = ModePaperLiteral
	if d := m.DPred(neStar, galaxy); d != 0.25 {
		t.Errorf("literal categorical d = %v, want 0.25", d)
	}
}

func TestColumnColumnDistance(t *testing.T) {
	m := metricWithAccess(t)
	j1 := predicate.Cols("T.u", predicate.Eq, "S.u")
	j2 := predicate.Cols("S.u", predicate.Eq, "T.u") // canonicalised equal
	if d := m.DPred(j1, j2); d != 0 {
		t.Errorf("same join d = %v", d)
	}
	j3 := predicate.Cols("T.u", predicate.Lt, "S.u")
	if d := m.DPred(j1, j3); d != 0.5 {
		t.Errorf("same cols diff op d = %v", d)
	}
	j4 := predicate.Cols("T.v", predicate.Eq, "S.v")
	if d := m.DPred(j1, j4); d != 1 {
		t.Errorf("diff join d = %v", d)
	}
	// Column-column vs column-constant.
	if d := m.DPred(j1, cc("T.u", predicate.Eq, 1)); d != 1 {
		t.Errorf("mixed kind d = %v", d)
	}
}

func TestDistanceIdenticalAreasZero(t *testing.T) {
	m := metricWithAccess(t)
	a := area([]string{"T"}, predicate.CNF{{cc("T.a", predicate.Lt, 3)}})
	if d := m.Distance(a, a); d != 0 {
		t.Errorf("identical areas d = %v", d)
	}
}

func TestDistanceTableComponentAdds(t *testing.T) {
	m := metricWithAccess(t)
	a := area([]string{"T"}, predicate.CNF{{cc("T.a", predicate.Lt, 3)}})
	b := area([]string{"S"}, predicate.CNF{{cc("T.a", predicate.Lt, 3)}})
	if d := m.Distance(a, b); d != 1 {
		t.Errorf("d = %v, want 1 (tables disjoint, constraint equal)", d)
	}
}

func TestDConjEmptyCases(t *testing.T) {
	m := metricWithAccess(t)
	empty := area([]string{"T"}, predicate.CNF{})
	one := area([]string{"T"}, predicate.CNF{{cc("T.a", predicate.Lt, 3)}})
	if d := m.Distance(empty, empty); d != 0 {
		t.Errorf("both empty d = %v", d)
	}
	if d := m.Distance(empty, one); d != 1 {
		t.Errorf("one empty d = %v", d)
	}
}

func TestDistanceMinMatchingFindsBestClausePairs(t *testing.T) {
	m := metricWithAccess(t)
	// Same two clauses in different order: distance 0.
	a := area([]string{"T"}, predicate.CNF{
		{cc("T.a", predicate.Lt, 3)},
		{cc("T.b", predicate.Gt, 1)},
	})
	b := area([]string{"T"}, predicate.CNF{
		{cc("T.b", predicate.Gt, 1)},
		{cc("T.a", predicate.Lt, 3)},
	})
	if d := m.Distance(a, b); d != 0 {
		t.Errorf("permuted clauses d = %v", d)
	}
}

func TestEqualityChainingSupportsCluster1(t *testing.T) {
	// The Cluster-1 phenomenon: many "Photoz.objid = c" queries with nearby
	// constants must have small pairwise distance in endpoint mode.
	st := schema.NewStats()
	st.SeedNumericContent("Photoz.objid", interval.Closed(0, 1e6))
	m := New(st)
	mk := func(c float64) *extract.AccessArea {
		return area([]string{"Photoz"}, predicate.CNF{{cc("Photoz.objid", predicate.Eq, c)}})
	}
	near := m.Distance(mk(1000), mk(2000))
	far := m.Distance(mk(1000), mk(900000))
	if near >= far {
		t.Errorf("near = %v should be < far = %v", near, far)
	}
	if near > 0.01 {
		t.Errorf("near constants d = %v, want tiny", near)
	}
}

func TestUnseededColumnFallback(t *testing.T) {
	m := New(nil) // no stats at all
	d := m.DPred(cc("X.q", predicate.Lt, 3), cc("X.q", predicate.Lt, 3))
	if d != 0 {
		t.Errorf("identical preds without stats d = %v", d)
	}
	d = m.DPred(cc("X.q", predicate.Eq, 1), cc("X.q", predicate.Eq, 1))
	if d != 0 {
		t.Errorf("identical points without stats d = %v", d)
	}
}

func TestProfileDistanceMatchesDistance(t *testing.T) {
	m := metricWithAccess(t)
	a := area([]string{"T"}, predicate.CNF{
		{cc("T.a", predicate.Lt, 3), cc("T.a", predicate.Gt, 4)},
		{cc("T.b", predicate.Ge, 1)},
	})
	b := area([]string{"T", "S"}, predicate.CNF{
		{cc("T.b", predicate.Le, 2)},
	})
	d1 := m.Distance(a, b)
	d2 := m.ProfileDistance(m.Profile(a), m.Profile(b))
	if d1 != d2 {
		t.Errorf("d = %v vs profile d = %v", d1, d2)
	}
}

// Property: the endpoint-mode distance is symmetric, non-negative, bounded
// by 2 (1 for tables + 1 for constraint), and zero on identical areas.
func TestPropDistanceMetricProperties(t *testing.T) {
	m := metricWithAccess(t)
	cols := []string{"T.a", "T.b", "T.u"}
	randArea := func(r *rand.Rand) *extract.AccessArea {
		nClauses := r.Intn(3) + 1
		cnf := make(predicate.CNF, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			nPreds := r.Intn(2) + 1
			cl := make(predicate.Clause, 0, nPreds)
			for j := 0; j < nPreds; j++ {
				cl = append(cl, cc(cols[r.Intn(len(cols))], predicate.Op(r.Intn(6)), float64(r.Intn(10))))
			}
			cnf = append(cnf, cl)
		}
		tables := [][]string{{"T"}, {"S"}, {"T", "S"}}[r.Intn(3)]
		return area(tables, cnf)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randArea(r), randArea(r)
		dab := m.Distance(a, b)
		dba := m.Distance(b, a)
		daa := m.Distance(a, a)
		// Summation order differs between directions; allow float noise.
		if math.Abs(dab-dba) > 1e-9 {
			t.Logf("asymmetry: %v vs %v", dab, dba)
			return false
		}
		if dab < 0 || dab > 2+1e-9 {
			t.Logf("out of range: %v", dab)
			return false
		}
		return daa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLiteralModeMixedKinds(t *testing.T) {
	m := metricWithAccess(t)
	m.Mode = ModePaperLiteral
	// Mixed numeric/string on the same column: literal mode treats
	// non-overlap as 0.
	d := m.DPred(cc("T.a", predicate.Lt, 3), predicate.CC("T.a", predicate.Eq, predicate.Str("x")))
	if d != 0 {
		t.Errorf("literal mixed d = %v", d)
	}
	// Column-column vs constant in literal mode.
	d = m.DPred(predicate.Cols("T.a", predicate.Eq, "T.b"), cc("T.a", predicate.Lt, 3))
	if d != 0 {
		t.Errorf("literal colcol-vs-cc d = %v", d)
	}
}

func TestDTablesCornerBothConstantQueries(t *testing.T) {
	// §5.1's corner case end to end: two table-free queries.
	m := metricWithAccess(t)
	a := area(nil, predicate.CNF{})
	b := area(nil, predicate.CNF{})
	if d := m.Distance(a, b); d != 0 {
		t.Errorf("constant queries d = %v", d)
	}
}

func TestDegenerateAccessWidth(t *testing.T) {
	st := schema.NewStats()
	st.SeedNumericContent("T.p", interval.Point(5)) // zero-width access
	m := New(st)
	if d := m.DPred(cc("T.p", predicate.Eq, 5), cc("T.p", predicate.Eq, 5)); d != 0 {
		t.Errorf("identical on degenerate access d = %v", d)
	}
	// With a degenerate access range the per-predicate hull fallback kicks
	// in; different constants land a positive distance apart.
	if d := m.DPred(cc("T.p", predicate.Eq, 5), cc("T.p", predicate.Eq, 6)); d <= 0 {
		t.Errorf("different on degenerate access d = %v, want > 0", d)
	}
}
