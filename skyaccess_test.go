package skyaccess_test

import (
	"strings"
	"testing"

	skyaccess "repro"
)

// These tests exercise the public facade exactly the way README's examples
// do — they are the contract a downstream user relies on.

func TestPublicExtractor(t *testing.T) {
	ex := skyaccess.NewExtractor(skyaccess.SkyServerSchema())
	area, err := ex.ExtractSQL("SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200 AND class = 'star'")
	if err != nil {
		t.Fatal(err)
	}
	if len(area.Relations) != 1 || area.Relations[0] != "SpecObjAll" {
		t.Errorf("relations = %v", area.Relations)
	}
	if !strings.Contains(area.String(), "SpecObjAll.class = 'star'") {
		t.Errorf("area = %s", area)
	}
	if !area.Exact {
		t.Error("should be exact")
	}
}

func TestPublicMinerEndToEnd(t *testing.T) {
	schema := skyaccess.SkyServerSchema()
	db := skyaccess.SkyServerDatabase(300, 1)
	stats := skyaccess.NewAccessStats()
	skyaccess.SeedStatsFromDatabase(db, stats)

	log := skyaccess.GenerateSkyServerLog(1500, 42)
	if len(log) < 1400 {
		t.Fatalf("log = %d records", len(log))
	}
	miner := skyaccess.NewMiner(skyaccess.Config{Schema: schema, Stats: stats})
	res := miner.MineRecords(log)
	if res.PipelineStats.Coverage() < 0.98 {
		t.Errorf("coverage = %v", res.PipelineStats.Coverage())
	}
	if len(res.Clusters) < 10 {
		t.Errorf("clusters = %d", len(res.Clusters))
	}
	res.AttachCoverage(db)
	top := res.Clusters[0]
	if top.Cardinality < 50 || top.Expr() == "" {
		t.Errorf("top cluster = %+v", top)
	}
}

func TestPublicMineSQL(t *testing.T) {
	miner := skyaccess.NewMiner(skyaccess.Config{Schema: skyaccess.SkyServerSchema()})
	var batch []string
	for i := 0; i < 20; i++ {
		batch = append(batch, "SELECT ra FROM PhotoObjAll WHERE ra <= 210 AND dec <= 10")
	}
	res := miner.MineSQL(batch)
	if len(res.Clusters) != 1 || res.Clusters[0].Cardinality != 20 {
		t.Fatalf("clusters = %+v", res.Clusters)
	}
}

func TestPublicStreamMonitor(t *testing.T) {
	n := 0
	mon := skyaccess.NewStreamMonitor(func(e skyaccess.StreamEvent) { n++ })
	ex := skyaccess.NewExtractor(skyaccess.SkyServerSchema())
	area, err := ex.ExtractSQL("SELECT * FROM Photoz WHERE z < 0.1")
	if err != nil {
		t.Fatal(err)
	}
	mon.Observe(skyaccess.Record{Seq: 1}, area)
	if n == 0 {
		t.Error("no events delivered")
	}
}

func TestPublicModes(t *testing.T) {
	if skyaccess.ModeEndpoint == skyaccess.ModePaperLiteral {
		t.Fatal("modes must differ")
	}
	m := skyaccess.NewMiner(skyaccess.Config{
		Schema: skyaccess.SkyServerSchema(),
		Mode:   skyaccess.ModePaperLiteral,
	})
	res := m.MineSQL([]string{"SELECT * FROM Photoz WHERE z < 0.1"})
	if res == nil {
		t.Fatal("nil result")
	}
}
