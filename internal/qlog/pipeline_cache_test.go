package qlog

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/skyserver"
)

func workloadRecords(t *testing.T, n int) []Record {
	t.Helper()
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: n, Seed: 42})
	recs := make([]Record, len(entries))
	for i, e := range entries {
		recs[i] = Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return recs
}

// requireSameOutput asserts two pipeline passes produced identical area
// records in identical order.
func requireSameOutput(t *testing.T, label string, a, b []AreaRecord) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d area records", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Record.Seq != b[i].Record.Seq {
			t.Fatalf("%s: order differs at %d: seq %d vs %d", label, i, a[i].Record.Seq, b[i].Record.Seq)
		}
		x, y := a[i].Area, b[i].Area
		if x.Key() != y.Key() || x.Exact != y.Exact || x.Truncated != y.Truncated {
			t.Fatalf("%s: area differs at seq %d:\n  %q exact=%v trunc=%v\n  %q exact=%v trunc=%v",
				label, a[i].Record.Seq, x.Key(), x.Exact, x.Truncated, y.Key(), y.Exact, y.Truncated)
		}
	}
}

// requireSameSemantics asserts the deterministic Stats counters agree
// (FullParses/CacheHits/PeakInFlight are scheduling telemetry and excluded).
func requireSameSemantics(t *testing.T, label string, a, b *Stats) {
	t.Helper()
	if a.Total != b.Total || a.Parsed != b.Parsed || a.Extracted != b.Extracted ||
		a.ExtractFailures != b.ExtractFailures || a.Truncated != b.Truncated ||
		a.Approximate != b.Approximate || a.EmptyAreas != b.EmptyAreas {
		t.Fatalf("%s: semantic stats differ:\n%+v\n%+v", label, a, b)
	}
	if len(a.ParseFailures) != len(b.ParseFailures) {
		t.Fatalf("%s: parse failure categories differ: %v vs %v", label, a.ParseFailures, b.ParseFailures)
	}
	for k, v := range a.ParseFailures {
		if b.ParseFailures[k] != v {
			t.Fatalf("%s: parse failures differ for %q: %d vs %d", label, k, v, b.ParseFailures[k])
		}
	}
}

// The template cache must be invisible in the output: same areas, same
// semantic counters, far fewer full parses.
func TestPipelineCachedMatchesUncached(t *testing.T) {
	recs := workloadRecords(t, 3000)
	sch := skyserver.Schema()

	uncached := &Pipeline{Extractor: extract.New(sch), NoCache: true}
	uAreas, uStats := uncached.Run(recs)

	cached := &Pipeline{Extractor: extract.New(sch)}
	cAreas, cStats := cached.Run(recs)

	requireSameOutput(t, "cached vs uncached", uAreas, cAreas)
	requireSameSemantics(t, "cached vs uncached", uStats, cStats)

	if uStats.FullParses != uStats.Total {
		t.Errorf("uncached full parses = %d, want %d", uStats.FullParses, uStats.Total)
	}
	if cStats.CacheHits == 0 {
		t.Error("cached run produced no cache hits")
	}
	if cStats.FullParses+cStats.CacheHits != cStats.Total {
		t.Errorf("full parses (%d) + hits (%d) != total (%d)",
			cStats.FullParses, cStats.CacheHits, cStats.Total)
	}
	// The acceptance bar: a template-dominated log needs at most half the
	// parses (in practice far fewer — tens of shapes over thousands of rows).
	if cStats.FullParses >= cStats.Total/2 {
		t.Errorf("cache ineffective: %d full parses of %d records", cStats.FullParses, cStats.Total)
	}
	// Parse stage observations must still cover every record (fingerprint
	// time stands in for parse time on hits), keeping §6.6 counts coherent.
	if cStats.Parse.Count != cStats.Total {
		t.Errorf("Parse.Count = %d, want %d", cStats.Parse.Count, cStats.Total)
	}
}

// RunStream must equal Run record for record, in input order.
func TestRunStreamMatchesRun(t *testing.T) {
	recs := workloadRecords(t, 2000)
	sch := skyserver.Schema()

	p1 := &Pipeline{Extractor: extract.New(sch)}
	areas, stats := p1.Run(recs)

	p2 := &Pipeline{Extractor: extract.New(sch), Workers: 4, Buffer: 8}
	var streamed []AreaRecord
	sStats := p2.RunStream(context.Background(), SliceSource(recs), func(ar AreaRecord) {
		streamed = append(streamed, ar)
	})

	requireSameOutput(t, "stream vs run", areas, streamed)
	requireSameSemantics(t, "stream vs run", stats, sStats)
}

// The feeder's admission window bounds how many records are resident at
// once: PeakInFlight can never exceed Workers+Buffer regardless of stream
// length, which is what makes RunStream O(workers + cache) memory.
func TestRunStreamBoundedResidency(t *testing.T) {
	recs := workloadRecords(t, 3000)
	const workers, buffer = 2, 3
	p := &Pipeline{Extractor: extract.New(skyserver.Schema()), Workers: workers, Buffer: buffer}
	st := p.RunStream(context.Background(), SliceSource(recs), nil)
	if st.Total != len(recs) {
		t.Fatalf("total = %d, want %d", st.Total, len(recs))
	}
	if st.PeakInFlight > workers+buffer {
		t.Errorf("peak in-flight %d exceeds window %d", st.PeakInFlight, workers+buffer)
	}
	if st.PeakInFlight == 0 {
		t.Error("peak in-flight never sampled")
	}
}

// A shared cache carries templates across runs: the second run over the same
// log family needs almost no full parses.
func TestPipelineSharedCache(t *testing.T) {
	recs := workloadRecords(t, 1000)
	sch := skyserver.Schema()
	cache := &extract.TemplateCache{}

	p1 := &Pipeline{Extractor: extract.New(sch), Cache: cache}
	_, st1 := p1.Run(recs)
	p2 := &Pipeline{Extractor: extract.New(sch), Cache: cache}
	_, st2 := p2.Run(recs)

	if st2.FullParses >= st1.FullParses {
		t.Errorf("warm cache did not reduce full parses: %d then %d", st1.FullParses, st2.FullParses)
	}
	if cache.Len() == 0 || cache.Hits() == 0 {
		t.Errorf("cache telemetry empty: len=%d hits=%d", cache.Len(), cache.Hits())
	}
}

// Streaming readers must agree with the slice readers and preserve their
// error reporting.
func TestStreamingReaders(t *testing.T) {
	recs := []Record{
		{Seq: 0, Time: 10, User: "alice", SQL: "SELECT * FROM T WHERE u > 1"},
		{Seq: 1, Time: 20, User: "bob", SQL: `SELECT * FROM S WHERE c = 'x,y'`},
		{Seq: 2, Time: 30, User: "eve", SQL: "SELECT *\nFROM T"},
	}
	var csvBuf, jsonlBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jsonlBuf, recs); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if err := ReadCSVStream(context.Background(), bytes.NewReader(csvBuf.Bytes()), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || got[2].SQL != recs[2].SQL || got[1].User != "bob" {
		t.Errorf("csv stream = %+v", got)
	}

	got = nil
	if err := ReadJSONLStream(context.Background(), bytes.NewReader(jsonlBuf.Bytes()), func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) || got[2].SQL != recs[2].SQL {
		t.Errorf("jsonl stream = %+v", got)
	}

	// Error formats survive the streaming rewrite.
	err := ReadCSVStream(context.Background(), strings.NewReader("seq,time,user,sql\nx,0,u,SELECT 1\n"), func(Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "bad seq") {
		t.Errorf("csv bad-seq error = %v", err)
	}

	// Callback errors abort the stream.
	calls := 0
	sentinel := ReadCSVStream(context.Background(), bytes.NewReader(csvBuf.Bytes()), func(Record) error {
		calls++
		return errStop
	})
	if sentinel == nil || calls != 1 {
		t.Errorf("callback error not propagated: err=%v calls=%d", sentinel, calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

// Skeleton regression (the bug this PR fixes): keyword case must not split
// templates, constants of every kind become placeholders, identifiers fold
// to lower case, and unlexable statements fall back to whitespace-normalised
// verbatim text.
func TestSkeletonNormalisation(t *testing.T) {
	a := Skeleton("select * from T where u > 1 and name like 'x%'")
	b := Skeleton("SELECT  *  FROM T\nWHERE u > 99 AND name LIKE 'zzz%'")
	if a != b {
		t.Errorf("skeletons differ:\n  %q\n  %q", a, b)
	}
	if want := "SELECT * FROM t WHERE u > ? AND name LIKE '?'"; a != want {
		t.Errorf("skeleton = %q, want %q", a, want)
	}
	if got := Skeleton("SELECT * FROM T WHERE u > @cap"); !strings.Contains(got, "@?") {
		t.Errorf("param placeholder missing: %q", got)
	}
	// Unlexable: verbatim with collapsed whitespace.
	if got := Skeleton("BOGUS   'unterminated"); got != "BOGUS 'unterminated" {
		t.Errorf("fallback skeleton = %q", got)
	}
}
