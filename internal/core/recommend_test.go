package core

import (
	"fmt"
	"testing"

	"repro/internal/extract"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

// recommendFixture mines three well-separated populations.
func recommendFixture(t *testing.T) (*Miner, *Result) {
	t.Helper()
	db := skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 200, Seed: 1})
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	m := NewMiner(Config{Schema: skyserver.Schema(), Stats: stats, MinPts: 5})
	var stmts []string
	for i := 0; i < 20; i++ {
		// Population A: low-redshift photometry.
		stmts = append(stmts, fmt.Sprintf("SELECT objid FROM Photoz WHERE z >= 0 AND z <= 0.%d", 1+i%3))
		// Population B: high-redshift (nearer to A than C).
		stmts = append(stmts, fmt.Sprintf("SELECT objid FROM Photoz WHERE z >= 2.0 AND z <= 2.%d", 1+i%3))
		// Population C: a different relation entirely.
		stmts = append(stmts, fmt.Sprintf("SELECT * FROM zooSpec WHERE ra BETWEEN 10 AND %d", 20+i%3))
	}
	res := m.MineSQL(stmts)
	if len(res.Clusters) != 3 {
		t.Fatalf("fixture clusters = %d", len(res.Clusters))
	}
	return m, res
}

func TestRecommendRanksByProximity(t *testing.T) {
	m, res := recommendFixture(t)
	ex := extract.New(skyserver.Schema())
	// The user works on low redshifts: population A is "theirs", B should
	// rank above C.
	mine, err := ex.ExtractSQL("SELECT objid FROM Photoz WHERE z >= 0 AND z <= 0.1")
	if err != nil {
		t.Fatal(err)
	}
	recs := m.Recommend(res, []*extract.AccessArea{mine}, 5)
	if len(recs) < 1 {
		t.Fatalf("no recommendations")
	}
	// The user's own cluster must be excluded.
	for _, r := range recs {
		if r.Cluster.Box.Has("Photoz.z") {
			iv := r.Cluster.Box.Get("Photoz.z")
			if iv.Lo < 1 { // population A's box
				t.Errorf("user's own cluster recommended: %s", r.Cluster.Expr())
			}
		}
	}
	// Nearest first: the high-z Photoz cluster before the zooSpec one.
	first := recs[0].Cluster
	hasRel := func(c interface{ Expr() string }, want string) bool { return false }
	_ = hasRel
	if first.Relations[0] != "Photoz" {
		t.Errorf("first recommendation = %v, want the Photoz high-z cluster", first.Relations)
	}
	if len(recs) >= 2 && recs[1].Distance < recs[0].Distance {
		t.Error("recommendations not sorted")
	}
}

func TestRecommendEdgeCases(t *testing.T) {
	m, res := recommendFixture(t)
	if out := m.Recommend(res, nil, 3); out != nil {
		t.Error("no user areas should give nil")
	}
	ex := extract.New(skyserver.Schema())
	a, _ := ex.ExtractSQL("SELECT * FROM Photoz WHERE z < 0.1")
	if out := m.Recommend(res, []*extract.AccessArea{a}, 0); out != nil {
		t.Error("k=0 should give nil")
	}
	out := m.Recommend(res, []*extract.AccessArea{a}, 1)
	if len(out) != 1 {
		t.Errorf("k=1 gave %d", len(out))
	}
}
