package predicate

import (
	"sort"
	"strings"
)

// Expr is a Boolean combination of atomic predicates: the constraint P of
// Section 2.1 in tree form, before CNF conversion.
type Expr interface {
	isExpr()
}

// Leaf wraps an atomic predicate.
type Leaf struct {
	P Pred
}

// And is a conjunction of sub-expressions.
type And struct {
	Kids []Expr
}

// Or is a disjunction of sub-expressions.
type Or struct {
	Kids []Expr
}

// Not negates its child; eliminated by NNF (predicate inversion pushes the
// negation into the leaves, Section 4.1).
type Not struct {
	Kid Expr
}

func (*Leaf) isExpr() {}
func (*And) isExpr()  {}
func (*Or) isExpr()   {}
func (*Not) isExpr()  {}

// NewLeaf wraps p.
func NewLeaf(p Pred) Expr { return &Leaf{P: p} }

// NewAnd builds a conjunction, flattening nested Ands and dropping TRUE
// leaves. An empty conjunction is TRUE; a conjunction containing FALSE is
// FALSE.
func NewAnd(kids ...Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		if k == nil {
			continue
		}
		switch x := k.(type) {
		case *And:
			flat = append(flat, x.Kids...)
		case *Leaf:
			if x.P.Kind == TruePred {
				continue
			}
			if x.P.Kind == FalsePred {
				return NewLeaf(False())
			}
			flat = append(flat, x)
		default:
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return NewLeaf(True())
	case 1:
		return flat[0]
	default:
		return &And{Kids: flat}
	}
}

// NewOr builds a disjunction, flattening nested Ors and dropping FALSE
// leaves. An empty disjunction is FALSE; a disjunction containing TRUE is
// TRUE.
func NewOr(kids ...Expr) Expr {
	var flat []Expr
	for _, k := range kids {
		if k == nil {
			continue
		}
		switch x := k.(type) {
		case *Or:
			flat = append(flat, x.Kids...)
		case *Leaf:
			if x.P.Kind == FalsePred {
				continue
			}
			if x.P.Kind == TruePred {
				return NewLeaf(True())
			}
			flat = append(flat, x)
		default:
			flat = append(flat, k)
		}
	}
	switch len(flat) {
	case 0:
		return NewLeaf(False())
	case 1:
		return flat[0]
	default:
		return &Or{Kids: flat}
	}
}

// NewNot negates e.
func NewNot(e Expr) Expr { return &Not{Kid: e} }

// MapLeaves returns a structural copy of e with every leaf predicate
// replaced by f(p). The shape (And/Or/Not nesting and child order) is
// preserved exactly — no TRUE/FALSE folding is applied — so a cached
// template's constraint instantiates to precisely the tree the direct
// conversion built for a statement of the same shape.
func MapLeaves(e Expr, f func(Pred) Pred) Expr {
	switch x := e.(type) {
	case *Leaf:
		return &Leaf{P: f(x.P)}
	case *Not:
		return &Not{Kid: MapLeaves(x.Kid, f)}
	case *And:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = MapLeaves(k, f)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = MapLeaves(k, f)
		}
		return &Or{Kids: kids}
	default:
		return e
	}
}

// ToNNF pushes negations down to the leaves using De Morgan's laws and
// predicate inversion, e.g. NOT (T.u > 5 AND T.v <= 10) becomes
// T.u <= 5 OR T.v > 10 (the example of Section 4.1).
func ToNNF(e Expr) Expr {
	return nnf(e, false)
}

func nnf(e Expr, negate bool) Expr {
	switch x := e.(type) {
	case *Leaf:
		if negate {
			return NewLeaf(x.P.Invert())
		}
		return NewLeaf(x.P)
	case *Not:
		return nnf(x.Kid, !negate)
	case *And:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = nnf(k, negate)
		}
		if negate {
			return NewOr(kids...)
		}
		return NewAnd(kids...)
	case *Or:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = nnf(k, negate)
		}
		if negate {
			return NewAnd(kids...)
		}
		return NewOr(kids...)
	default:
		return e
	}
}

// CountLeaves returns the number of atomic predicates in the expression.
func CountLeaves(e Expr) int {
	switch x := e.(type) {
	case *Leaf:
		return 1
	case *Not:
		return CountLeaves(x.Kid)
	case *And:
		n := 0
		for _, k := range x.Kids {
			n += CountLeaves(k)
		}
		return n
	case *Or:
		n := 0
		for _, k := range x.Kids {
			n += CountLeaves(k)
		}
		return n
	default:
		return 0
	}
}

// Truncate keeps only the first cap atomic predicates (in left-to-right
// order) of an NNF expression, replacing the remainder with TRUE. This is
// the Section 6.6 workaround ("only considers the first 35 predicates of any
// query") that bounds the exponential CNF conversion. The second result
// reports whether anything was dropped.
func Truncate(e Expr, cap int) (Expr, bool) {
	if cap <= 0 || CountLeaves(e) <= cap {
		return e, false
	}
	remaining := cap
	out := truncate(e, &remaining)
	return out, true
}

func truncate(e Expr, remaining *int) Expr {
	switch x := e.(type) {
	case *Leaf:
		if *remaining <= 0 {
			return NewLeaf(True())
		}
		*remaining--
		return x
	case *Not:
		return NewNot(truncate(x.Kid, remaining))
	case *And:
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = truncate(k, remaining)
		}
		return NewAnd(kids...)
	case *Or:
		// Dropping predicates inside a disjunction by replacing them with
		// TRUE would make the whole clause vacuous; that is acceptable for
		// an over-approximation of the access area, matching the paper's
		// "first 35 predicates" pragmatics.
		kids := make([]Expr, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = truncate(k, remaining)
		}
		return NewOr(kids...)
	default:
		return e
	}
}

// String renders the expression with explicit parentheses.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Leaf:
		return x.P.String()
	case *Not:
		return "NOT (" + ExprString(x.Kid) + ")"
	case *And:
		parts := make([]string, len(x.Kids))
		for i, k := range x.Kids {
			parts[i] = ExprString(k)
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case *Or:
		parts := make([]string, len(x.Kids))
		for i, k := range x.Kids {
			parts[i] = ExprString(k)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	default:
		return "?"
	}
}

// LeafColumns returns the sorted set of columns referenced anywhere in the
// expression.
func LeafColumns(e Expr) []string {
	set := make(map[string]struct{})
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Leaf:
			for _, c := range x.P.Columns() {
				set[c] = struct{}{}
			}
		case *Not:
			walk(x.Kid)
		case *And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k)
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
