package skyserver

import (
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/schema"
)

func TestSchemaRelations(t *testing.T) {
	s := Schema()
	for _, name := range []string{
		"PhotoObjAll", "Photoz", "SpecObjAll", "SpecPhotoAll", "galSpecLine",
		"galSpecInfo", "galSpecExtra", "galSpecIndx", "sppLines", "sppParams",
		"zooSpec", "emissionLinesPort", "stellarMassPCAWisc", "AtlasOutline", "DBObjects",
	} {
		if s.Relation(name) == nil {
			t.Errorf("missing relation %s", name)
		}
	}
	if c := s.Relation("zooSpec").Column("dec"); c == nil || c.Domain.Lo != -90 {
		t.Error("zooSpec.dec domain should start at -90 (the -100 queries are out of domain)")
	}
}

func TestBuildDatabaseContentBounds(t *testing.T) {
	db := BuildDatabase(DataConfig{RowsPerTable: 500, Seed: 1})
	cases := []struct {
		col    string
		lo, hi float64 // bounds the content must respect
	}{
		{"SpecObjAll.plate", PlateContent.Lo, PlateContent.Hi},
		{"SpecObjAll.mjd", MjdContent.Lo, MjdContent.Hi},
		{"Photoz.z", PhotozZContent.Lo, PhotozZContent.Hi},
		{"PhotoObjAll.dec", PhotoDecContent.Lo, PhotoDecContent.Hi},
		{"zooSpec.dec", ZooDecContent.Lo, ZooDecContent.Hi},
		{"galSpecLine.specobjid", GalSpecObjidContent.Lo, GalSpecObjidContent.Hi},
	}
	for _, c := range cases {
		iv, ok := db.ContentInterval(c.col)
		if !ok {
			t.Errorf("%s: no content", c.col)
			continue
		}
		if iv.Lo < c.lo || iv.Hi > c.hi {
			t.Errorf("%s: content %v outside declared bounds [%v, %v]", c.col, iv, c.lo, c.hi)
		}
	}
	vals, ok := db.ContentValues("SpecObjAll.class")
	if !ok || len(vals) != 3 {
		t.Errorf("class values = %v", vals)
	}
}

func TestDataDeterministic(t *testing.T) {
	a := BuildDatabase(DataConfig{RowsPerTable: 100, Seed: 5})
	b := BuildDatabase(DataConfig{RowsPerTable: 100, Seed: 5})
	ia, _ := a.ContentInterval("Photoz.z")
	ib, _ := b.ContentInterval("Photoz.z")
	if !ia.Equal(ib) {
		t.Error("same seed should give identical data")
	}
}

func TestSeedStats(t *testing.T) {
	db := BuildDatabase(DataConfig{RowsPerTable: 300, Seed: 2})
	st := schema.NewStats()
	SeedStats(db, st)
	acc, ok := st.NumericAccess("SpecObjAll.plate")
	if !ok {
		t.Fatal("plate not seeded")
	}
	// Range-doubling: access extends beyond the sample range.
	content, _ := db.ContentInterval("SpecObjAll.plate")
	if acc.Width() < content.Width() {
		t.Errorf("access %v narrower than content %v", acc, content)
	}
	if _, ok := st.CategoricalAccess("SpecObjAll.class"); !ok {
		t.Error("class not seeded")
	}
}

func TestGenerateLogComposition(t *testing.T) {
	entries := GenerateLog(WorkloadConfig{Queries: 5000, Seed: 9})
	if len(entries) < 4900 || len(entries) > 5100 {
		t.Fatalf("entries = %d", len(entries))
	}
	counts := make(map[string]int)
	for _, e := range entries {
		counts[e.Template]++
	}
	// All 24 clusters present with at least the floor.
	for i := 1; i <= 24; i++ {
		name := clusterName(i)
		if counts[name] < 8 {
			t.Errorf("%s count = %d, want >= 8", name, counts[name])
		}
	}
	// Cardinality ranking follows Table 1 for the heavyweights.
	if !(counts["cluster01"] > counts["cluster02"] && counts["cluster02"] > counts["cluster09"]) {
		t.Errorf("ranking broken: c1=%d c2=%d c9=%d", counts["cluster01"], counts["cluster02"], counts["cluster09"])
	}
	if counts["noise"] == 0 || counts["error"] == 0 || counts["mysql"] == 0 || counts["bigpred"] == 0 {
		t.Errorf("special populations missing: %v", counts)
	}
	// Timestamps increase, seqs are consecutive.
	for i, e := range entries {
		if e.Seq != i {
			t.Fatalf("seq[%d] = %d", i, e.Seq)
		}
	}
}

func TestGenerateLogDeterministic(t *testing.T) {
	a := GenerateLog(WorkloadConfig{Queries: 500, Seed: 3})
	b := GenerateLog(WorkloadConfig{Queries: 500, Seed: 3})
	for i := range a {
		if a[i].SQL != b[i].SQL || a[i].User != b[i].User {
			t.Fatalf("entry %d differs", i)
		}
	}
	c := GenerateLog(WorkloadConfig{Queries: 500, Seed: 4})
	same := 0
	for i := range a {
		if a[i].SQL == c[i].SQL {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds should differ")
	}
}

func clusterName(i int) string {
	if i < 10 {
		return "cluster0" + string(rune('0'+i))
	}
	return "cluster" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestTemplateQueriesExtractToExpectedRelations(t *testing.T) {
	ex := extract.New(Schema())
	entries := GenerateLog(WorkloadConfig{Queries: 2000, Seed: 11})
	wantRel := map[string]string{
		"cluster01": "Photoz",
		"cluster02": "SpecObjAll",
		"cluster05": "PhotoObjAll",
		"cluster09": "SpecObjAll",
		"cluster10": "DBObjects",
		"cluster13": "AtlasOutline",
		"cluster14": "zooSpec",
		"cluster18": "PhotoObjAll",
		"cluster22": "zooSpec",
		"cluster23": "Photoz",
	}
	checked := make(map[string]bool)
	for _, e := range entries {
		rel, ok := wantRel[e.Template]
		if !ok || checked[e.Template] {
			continue
		}
		area, err := ex.ExtractSQL(e.SQL)
		if err != nil {
			t.Errorf("%s: extract %q: %v", e.Template, e.SQL, err)
			continue
		}
		found := false
		for _, r := range area.Relations {
			if r == rel {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: relations = %v, want %s (sql %q)", e.Template, area.Relations, rel, e.SQL)
		}
		checked[e.Template] = true
	}
	if len(checked) != len(wantRel) {
		t.Errorf("only checked %v", checked)
	}
}

func TestVariantFormsShareAccessAreaWithPlainForms(t *testing.T) {
	// The aggregate/NOT variants must land in the same access-area
	// neighbourhood as the plain forms — that is what makes them cluster
	// together in E1 and break OLAPClus-raw in E7.
	ex := extract.New(Schema())
	plain, err := ex.ExtractSQL("SELECT * FROM galSpecLine WHERE specobjid BETWEEN 1400000000000000000 AND 1500000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	variant, err := ex.ExtractSQL("SELECT specobjid, COUNT(*) FROM galSpecLine WHERE specobjid BETWEEN 1400000000000000000 AND 1500000000000000000 GROUP BY specobjid HAVING COUNT(*) > 1")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != variant.Key() {
		t.Errorf("keys differ:\n%s\n%s", plain.Key(), variant.Key())
	}
	notForm, err := ex.ExtractSQL("SELECT * FROM galSpecLine WHERE NOT (specobjid < 1400000000000000000 OR specobjid > 1500000000000000000)")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != notForm.Key() {
		t.Errorf("NOT form key differs:\n%s\n%s", plain.Key(), notForm.Key())
	}
}

func TestBigPredQueryTruncates(t *testing.T) {
	ex := extract.New(Schema())
	entries := GenerateLog(WorkloadConfig{Queries: 2000, Seed: 13})
	for _, e := range entries {
		if e.Template != "bigpred" {
			continue
		}
		area, err := ex.ExtractSQL(e.SQL)
		if err != nil {
			t.Fatalf("bigpred extract: %v", err)
		}
		if !area.Truncated {
			t.Error("bigpred query should hit the 35-predicate cap")
		}
		return
	}
	t.Fatal("no bigpred query found")
}

func TestMySQLQueriesParse(t *testing.T) {
	entries := GenerateLog(WorkloadConfig{Queries: 2000, Seed: 17})
	ex := extract.New(Schema())
	for _, e := range entries {
		if e.Template != "mysql" {
			continue
		}
		if !strings.Contains(e.SQL, "LIMIT") {
			t.Errorf("mysql query lacks LIMIT: %q", e.SQL)
		}
		if _, err := ex.ExtractSQL(e.SQL); err != nil {
			t.Errorf("mysql dialect should still extract: %v", err)
		}
		return
	}
	t.Fatal("no mysql query found")
}

func TestCountryOf(t *testing.T) {
	if CountryOf("alice") != CountryOf("alice") {
		t.Fatal("country assignment must be deterministic")
	}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[CountryOf(clusterName(i%24)+string(rune('a'+i%26)))]++
	}
	if len(counts) < 10 {
		t.Errorf("countries = %d, want a broad tail", len(counts))
	}
	// Skew: the top country dominates the median one.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 1000 {
		t.Errorf("top country share = %d of 5000, want skewed", max)
	}
}
