package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/memdb"
	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/schema"
	"repro/internal/skyserver"
)

func testDB() *memdb.DB {
	return skyserver.BuildDatabase(skyserver.DataConfig{RowsPerTable: 400, Seed: 1})
}

func seededStats(db *memdb.DB) *schema.Stats {
	stats := schema.NewStats()
	skyserver.SeedStats(db, stats)
	return stats
}

func synthRecords(n int, seed int64) []qlog.Record {
	entries := skyserver.GenerateLog(skyserver.WorkloadConfig{Queries: n, Seed: seed})
	recs := make([]qlog.Record, len(entries))
	for i, e := range entries {
		recs[i] = qlog.Record{Seq: e.Seq, Time: e.Time, User: e.User, SQL: e.SQL}
	}
	return recs
}

func minerConfig(db *memdb.DB) core.Config {
	return core.Config{Schema: skyserver.Schema(), Seed: 42, Stats: seededStats(db)}
}

func ndjsonBody(recs []qlog.Record) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		_ = enc.Encode(r)
	}
	return &buf
}

func postNDJSON(t *testing.T, url string, recs []qlog.Record) ingestReply {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", ndjsonBody(recs))
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	defer resp.Body.Close()
	var reply ingestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("ingest reply: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d (%s)", resp.StatusCode, reply.Error)
	}
	return reply
}

func get(t *testing.T, url string, accept string) (int, http.Header, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// The serve-smoke gate: replaying a log into the server and flushing must
// produce a /report byte-for-byte identical, in every format, to the batch
// miner's report over the same records.
func TestServeSmoke(t *testing.T) {
	db := testDB()
	recs := synthRecords(1000, 42)

	batch := core.NewMiner(minerConfig(db)).MineRecords(recs)
	batch.AttachCoverage(db)

	s, err := NewServer(Config{Miner: minerConfig(db), Coverage: db, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _, body := get(t, ts.URL+"/report", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("report before first epoch: status %d, body %q", code, body)
	}

	// Replay in bursts, as loggen -replay would.
	for lo := 0; lo < len(recs); lo += 100 {
		hi := lo + 100
		if hi > len(recs) {
			hi = len(recs)
		}
		if reply := postNDJSON(t, ts.URL, recs[lo:hi]); reply.Accepted != hi-lo {
			t.Fatalf("burst accepted %d of %d", reply.Accepted, hi-lo)
		}
	}
	if resp, err := http.Post(ts.URL+"/flush", "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flush status %d", resp.StatusCode)
		}
	}

	for _, f := range []report.Format{report.Text, report.CSV, report.JSON} {
		var want bytes.Buffer
		if err := report.Write(&want, batch, f, report.Options{Coverage: true}); err != nil {
			t.Fatal(err)
		}
		code, hdr, got := get(t, ts.URL+"/report?format="+string(f), "")
		if code != http.StatusOK {
			t.Fatalf("%s report status %d", f, code)
		}
		if ct := hdr.Get("Content-Type"); ct != contentTypes[f] {
			t.Errorf("%s report content-type %q, want %q", f, ct, contentTypes[f])
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("%s report differs from batch miner.\nserver:\n%s\nbatch:\n%s", f, got, want.Bytes())
		}
	}

	// Accept-header negotiation.
	if _, hdr, _ := get(t, ts.URL+"/report", "application/json"); hdr.Get("Content-Type") != "application/json" {
		t.Errorf("Accept: application/json negotiated %q", hdr.Get("Content-Type"))
	}

	if code, _, body := get(t, ts.URL+"/healthz", ""); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", code, body)
	}
	code, _, body := get(t, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	var metrics map[string]any
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	if metrics["ingest_accepted"].(float64) != 1000 {
		t.Errorf("metrics accepted = %v, want 1000", metrics["ingest_accepted"])
	}
	if metrics["epochs"].(float64) < 1 {
		t.Errorf("metrics epochs = %v, want >= 1", metrics["epochs"])
	}
}

// JSON-array and single-object bodies are accepted alongside NDJSON.
func TestIngestJSONBodies(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(10, 7)[:10]
	arr, _ := json.Marshal(recs)
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("array ingest status %d", resp.StatusCode)
	}

	one, _ := json.Marshal(recs[0])
	resp, err = http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("object ingest status %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/ingest", "application/json", strings.NewReader("42"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus ingest status %d, want 400", resp.StatusCode)
	}

	s.Flush()
	if got := s.statsSnapshot().Total; got != 11 {
		t.Fatalf("pipeline saw %d records, want 11", got)
	}
}

// A queue much smaller than an ingest burst must answer 429 without losing
// any record it accepted: after a flush, every accepted record has been
// extracted.
func TestIngestBackpressure(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db), QueueSize: 16, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(4000, 9)
	total, saw429 := 0, false
	for lo := 0; lo < len(recs) && !saw429; lo += 1000 {
		resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", ndjsonBody(recs[lo:lo+1000]))
		if err != nil {
			t.Fatal(err)
		}
		var reply ingestReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		total += reply.Accepted
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429 = true
			if reply.Accepted >= 1000 {
				t.Errorf("429 reply claims all %d records accepted", reply.Accepted)
			}
		default:
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Skip("queue never filled on this machine; backpressure path not exercised")
	}
	s.Flush()
	if got := s.statsSnapshot().Total; got != total {
		t.Fatalf("accepted %d records but pipeline saw %d", total, got)
	}
	if got := s.rejected.Load(); got == 0 {
		t.Error("rejected counter is zero despite a 429")
	}
}

// Graceful shutdown under concurrent load: every record a client was told
// was accepted is extracted and lands in the snapshot, and a server
// restored from that snapshot serves the identical report.
func TestShutdownUnderLoadZeroLoss(t *testing.T) {
	db := testDB()
	snapPath := filepath.Join(t.TempDir(), "snapshot.json")
	s, err := NewServer(Config{Miner: minerConfig(db), Coverage: db, SnapshotPath: snapPath, QueueSize: 64, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	recs := synthRecords(3000, 5)
	var mu sync.Mutex
	accepted := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := w * 750; lo < (w+1)*750; lo += 50 {
				resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", ndjsonBody(recs[lo:lo+50]))
				if err != nil {
					return
				}
				var reply ingestReply
				_ = json.NewDecoder(resp.Body).Decode(&reply)
				resp.Body.Close()
				mu.Lock()
				accepted += reply.Accepted
				mu.Unlock()
				if resp.StatusCode == http.StatusServiceUnavailable {
					return
				}
			}
		}(w)
	}
	// Let the load get going, then close concurrently with it: late POSTs
	// get 503, but whatever was accepted must survive.
	for deadline := time.Now().Add(10 * time.Second); s.accepted.Load() < 500 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()

	if accepted == 0 {
		t.Fatal("no records accepted before shutdown")
	}
	if got := s.statsSnapshot().Total; got != accepted {
		t.Fatalf("accepted %d records but extracted %d — records lost in shutdown", accepted, got)
	}

	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot json: %v", err)
	}
	if snap.Accepted != int64(accepted) || snap.Pipeline.Total != accepted {
		t.Fatalf("snapshot accounts for %d accepted / %d extracted, want %d", snap.Accepted, snap.Pipeline.Total, accepted)
	}

	var want bytes.Buffer
	latestRes, _ := s.latest()
	if err := report.Write(&want, latestRes, report.Text, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{Miner: minerConfig(db), Coverage: db, SnapshotPath: snapPath})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	defer s2.Close()
	var got bytes.Buffer
	latestRes2, _ := s2.latest()
	if err := report.Write(&got, latestRes2, report.Text, report.Options{Coverage: true}); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("restored report differs:\nbefore:\n%s\nafter:\n%s", want.String(), got.String())
	}
	if s2.inc.Distinct() != s.inc.Distinct() {
		t.Fatalf("restored %d distinct areas, want %d", s2.inc.Distinct(), s.inc.Distinct())
	}
}

// The size trigger runs epochs in the background without explicit flushes.
func TestEpochSizeTrigger(t *testing.T) {
	db := testDB()
	s, err := NewServer(Config{Miner: minerConfig(db), EpochAreas: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs := synthRecords(600, 11)
	for i := range recs {
		if err := s.enqueue(recs[i]); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	s.Flush() // drain, so trigger epochs had every chance to fire
	if s.epochs.Load() < 2 {
		t.Errorf("expected background epochs beyond the flush, got %d", s.epochs.Load())
	}
	if res, _ := s.latest(); res == nil {
		t.Error("no result published")
	}
}

// POST /snapshot persists on demand; deadline-bound Shutdown still writes a
// snapshot covering the extracted prefix.
func TestSnapshotEndpointAndDeadline(t *testing.T) {
	db := testDB()
	snapPath := filepath.Join(t.TempDir(), "snap.json")
	s, err := NewServer(Config{Miner: minerConfig(db), SnapshotPath: snapPath})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postNDJSON(t, ts.URL, synthRecords(50, 3))
	s.Flush()
	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired deadline: shutdown must still complete and snapshot
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("shutdown err = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot after deadline shutdown: %v", err)
	}

	// Ingest after shutdown answers 503.
	resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson", ndjsonBody(synthRecords(1, 4)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown ingest status %d, want 503", resp.StatusCode)
	}
}
