package core

import (
	"repro/internal/qlog"
)

// MergeResults combines per-shard mining results into one global Result, the
// coordinator half of relation-set sharding. It is exact — the merged result
// is what a single batch mine over the union of the shards' records would
// produce — under the sharding invariants:
//
//   - every relation set is owned by exactly one shard (the router's
//     assignment), so no two inputs can contain the same distinct area and
//     no DBSCAN neighbourhood is ever split across inputs;
//   - all shards clustered with the same fixed eps (no AutoEps), below the
//     1/(maxTables+1) partitioning threshold, so clustering really did run
//     per relation-set partition.
//
// Under those invariants every scalar is a plain sum, the cluster multiset
// is the concatenation, and the global Table-1 ordering is re-established by
// the same comparator finalizeClusters applies in a batch run — which also
// re-namespaces the per-shard cluster IDs into one global 1..n sequence.
// Summaries are shallow-copied before re-numbering so the shards' own
// published results are never mutated.
//
// ChosenEps is taken from the first input that clustered anything; callers
// enforce the equal-eps invariant (the coordinator configures every shard
// identically). Nil inputs are skipped so callers can pass results from
// shards that have not run an epoch yet.
func MergeResults(parts ...*Result) *Result {
	merged := &Result{}
	stats := &qlog.Stats{}
	haveStats := false
	haveEps := false
	for _, r := range parts {
		if r == nil {
			continue
		}
		merged.DistinctAreas += r.DistinctAreas
		merged.ClusteredAreas += r.ClusteredAreas
		merged.NoiseQueries += r.NoiseQueries
		merged.ContradictoryAreas += r.ContradictoryAreas
		merged.DistanceEvals += r.DistanceEvals
		merged.DistanceCacheHits += r.DistanceCacheHits
		if !haveEps && r.ChosenEps != 0 {
			merged.ChosenEps = r.ChosenEps
			haveEps = true
		}
		if r.PipelineStats != nil {
			stats.Merge(r.PipelineStats)
			haveStats = true
		}
		for _, c := range r.Clusters {
			cp := *c
			merged.Clusters = append(merged.Clusters, &cp)
		}
	}
	if haveStats {
		merged.PipelineStats = stats
	}
	finalizeClusters(merged)
	return merged
}

// MergeExact reports whether relation-set sharding is exact for the given
// eps and the largest relation-set size seen anywhere in the workload: the
// same eps < 1/(maxTables+1) guard partitionItems applies, evaluated against
// the GLOBAL maximum. When it fails, a single batch run would have clustered
// across relation sets, which independent shards cannot reproduce — the
// coordinator surfaces the merged report as approximate.
func MergeExact(eps float64, maxTables int) bool {
	if maxTables < 1 {
		maxTables = 1
	}
	return eps < 1.0/float64(maxTables+1)
}
