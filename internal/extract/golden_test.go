package extract

import (
	"testing"

	"repro/internal/skyserver"
)

// TestGoldenSkyServerCorpus pins the exact access areas of a corpus of
// realistic SkyServer-style statements (shapes drawn from the SDSS sample
// query pages and the paper's own examples). Any change to parsing,
// transformation, CNF conversion or consolidation that alters one of these
// mappings will show up here.
func TestGoldenSkyServerCorpus(t *testing.T) {
	ex := New(skyserver.Schema())
	cases := []struct {
		name string
		sql  string
		want string // area.String()
	}{
		{
			"photometry cone-ish rectangle",
			"SELECT TOP 10 objid, ra, dec FROM PhotoObjAll WHERE ra BETWEEN 179.5 AND 182.3 AND dec BETWEEN -1.0 AND 1.8",
			"σ[PhotoObjAll.dec <= 1.8 AND PhotoObjAll.dec >= -1.0 AND PhotoObjAll.ra <= 182.3 AND PhotoObjAll.ra >= 179.5](PhotoObjAll)",
		},
		{
			"spectro class filter",
			"SELECT specobjid FROM SpecObjAll WHERE class = 'QSO' AND z > 2.5",
			"σ[SpecObjAll.class = 'QSO' AND SpecObjAll.z > 2.5](SpecObjAll)",
		},
		{
			"paper example 1 shape",
			"SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200 AND mjd BETWEEN 51578 AND 52178",
			"σ[SpecObjAll.mjd <= 52178 AND SpecObjAll.mjd >= 51578 AND SpecObjAll.plate <= 3200 AND SpecObjAll.plate >= 296](SpecObjAll)",
		},
		{
			"objid point lookup",
			"SELECT z, zerr FROM Photoz WHERE objid = 1237657855534432934",
			"σ[Photoz.objid = 1237657855534432934](Photoz)",
		},
		{
			"IN list of plates",
			"SELECT * FROM SpecObjAll WHERE plate IN (266, 745, 1035)",
			"σ[(SpecObjAll.plate = 266 OR SpecObjAll.plate = 745 OR SpecObjAll.plate = 1035)](SpecObjAll)",
		},
		{
			"join with value-added catalogue",
			"SELECT g.bptclass FROM galSpecExtra g JOIN galSpecIndx i ON g.specobjid = i.specObjID WHERE g.bptclass >= 1",
			"σ[galSpecExtra.bptclass >= 1 AND galSpecExtra.specobjid = galSpecIndx.specObjID](galSpecExtra × galSpecIndx)",
		},
		{
			"full outer join loses constraint",
			"SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID",
			"σ(galSpecExtra × galSpecIndx)",
		},
		{
			"exists flattening",
			"SELECT * FROM sppParams WHERE fehadop < -0.5 AND EXISTS (SELECT * FROM sppLines WHERE sppLines.specobjid = sppParams.specobjid AND sppLines.gwholemask = 0)",
			"σ[sppLines.gwholemask = 0 AND sppLines.specobjid = sppParams.specobjid AND sppParams.fehadop < -0.5](sppLines × sppParams)",
		},
		{
			"not pushdown",
			"SELECT * FROM Photoz WHERE NOT (z < 0 OR z > 0.1)",
			"σ[Photoz.z <= 0.1 AND Photoz.z >= 0](Photoz)",
		},
		{
			"vacuous count having",
			"SELECT plate, COUNT(*) FROM SpecObjAll WHERE plate < 1000 GROUP BY plate HAVING COUNT(*) > 5",
			"σ[SpecObjAll.plate < 1000](SpecObjAll)",
		},
		{
			"impossible count having",
			"SELECT plate, COUNT(*) FROM SpecObjAll GROUP BY plate HAVING COUNT(*) < 1",
			"σ[FALSE](SpecObjAll)",
		},
		{
			"mysql dialect limit",
			"SELECT Galaxies.objid FROM Galaxies LIMIT 10",
			"σ(Galaxies)",
		},
		{
			"scalar subquery",
			"SELECT * FROM zooSpec WHERE specobjid = (SELECT specobjid FROM galSpecInfo WHERE snmedian > 50)",
			"σ[galSpecInfo.snmedian > 50 AND galSpecInfo.specobjid = zooSpec.specobjid](galSpecInfo × zooSpec)",
		},
		{
			"in subquery",
			"SELECT * FROM zooSpec WHERE specobjid IN (SELECT specobjid FROM galSpecInfo WHERE targettype = 'GALAXY')",
			"σ[galSpecInfo.specobjid = zooSpec.specobjid AND galSpecInfo.targettype = 'GALAXY'](galSpecInfo × zooSpec)",
		},
		{
			"union of redshift shells",
			"SELECT objid FROM Photoz WHERE z < 0.1 UNION SELECT objid FROM Photoz WHERE z > 3",
			"σ[(Photoz.z < 0.1 OR Photoz.z > 3)](Photoz)",
		},
		{
			"redundant bounds consolidated",
			"SELECT * FROM SpecObjAll WHERE plate > 100 AND plate > 200 AND plate <= 500",
			"σ[SpecObjAll.plate <= 500 AND SpecObjAll.plate > 200](SpecObjAll)",
		},
		{
			"contradiction detected",
			"SELECT * FROM SpecObjAll WHERE plate > 500 AND plate < 100",
			"σ[FALSE](SpecObjAll)",
		},
		{
			"constant folding",
			"SELECT * FROM Photoz WHERE z < 1 + 0.5 AND 1 = 1",
			"σ[Photoz.z < 1.5](Photoz)",
		},
		{
			"bracketed identifiers",
			"SELECT [ra] FROM [PhotoObjAll] WHERE [dec] >= 10",
			"σ[PhotoObjAll.dec >= 10](PhotoObjAll)",
		},
		{
			"dbo prefix stripped",
			"SELECT * FROM dbo.SpecObjAll WHERE dbo.SpecObjAll.plate = 266",
			"σ[SpecObjAll.plate = 266](SpecObjAll)",
		},
		{
			"comparison flipped",
			"SELECT * FROM Photoz WHERE 0.1 >= z",
			"σ[Photoz.z <= 0.1](Photoz)",
		},
		{
			"order by irrelevant",
			"SELECT ra FROM SpecObjAll WHERE ra < 180 ORDER BY ra DESC",
			"σ[SpecObjAll.ra < 180](SpecObjAll)",
		},
		{
			"derived table",
			"SELECT x.p FROM (SELECT plate AS p FROM SpecObjAll WHERE mjd > 52000) x WHERE x.p < 1000",
			"σ[SpecObjAll.mjd > 52000 AND SpecObjAll.plate < 1000](SpecObjAll)",
		},
		{
			"any quantifier",
			"SELECT * FROM zooSpec WHERE p_el > ANY (SELECT p_cs FROM zooSpec WHERE dec > 60)",
			"", // self-join via subquery: rejected, see below
		},
	}
	for _, c := range cases {
		area, err := ex.ExtractSQL(c.sql)
		if c.want == "" {
			if err == nil {
				t.Errorf("%s: expected rejection, got %s", c.name, area)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got := area.String(); got != c.want {
			t.Errorf("%s:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}
