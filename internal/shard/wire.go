// Package shard scales the serve layer horizontally: a coordinator routes
// ingested records to N shard nodes by relation-set key — the same key
// core.partitionItems splits the distance matrix on — so each shard mines a
// disjoint slice of the area space with the unmodified core.Incremental
// miner, and the coordinator's merge of the per-shard results is EXACT (what
// one batch miner over the union would report) whenever eps stays below the
// 1/(maxTables+1) partitioning threshold.
//
// Two topologies share all of the code: in-process shards (goroutine nodes
// behind the same router/merge path, the CI equivalence gate) and multi-node
// shards (each a plain skyserved -role shard, reached over HTTP).
package shard

import (
	"strconv"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/qlog"
)

// WireInterval is one interval endpoint pair in transport form. Lo/Hi are
// strconv 'g'-formatted so ±Inf (unbounded endpoints, which encoding/json
// refuses as float64) and every finite float round-trip exactly.
type WireInterval struct {
	Lo     string `json:"lo"`
	Hi     string `json:"hi"`
	LoOpen bool   `json:"lo_open,omitempty"`
	HiOpen bool   `json:"hi_open,omitempty"`
}

func encodeInterval(iv interval.Interval) WireInterval {
	return WireInterval{
		Lo:     strconv.FormatFloat(iv.Lo, 'g', -1, 64),
		Hi:     strconv.FormatFloat(iv.Hi, 'g', -1, 64),
		LoOpen: iv.LoOpen,
		HiOpen: iv.HiOpen,
	}
}

func decodeInterval(w WireInterval) interval.Interval {
	lo, _ := strconv.ParseFloat(w.Lo, 64)
	hi, _ := strconv.ParseFloat(w.Hi, 64)
	return interval.Interval{Lo: lo, Hi: hi, LoOpen: w.LoOpen, HiOpen: w.HiOpen}
}

// WireSummary mirrors aggregate.Summary with the Box flattened to a
// dimension→interval map (Box's internals are unexported).
type WireSummary struct {
	ID              int                     `json:"id"`
	Cardinality     int                     `json:"cardinality"`
	UserCount       int                     `json:"user_count"`
	Relations       []string                `json:"relations,omitempty"`
	Box             map[string]WireInterval `json:"box,omitempty"`
	Categorical     map[string][]string     `json:"categorical,omitempty"`
	JoinPreds       []string                `json:"join_preds,omitempty"`
	Representatives []string                `json:"representatives,omitempty"`
	AreaCoverage    float64                 `json:"area_coverage,omitempty"`
	ObjectCoverage  float64                 `json:"object_coverage,omitempty"`
}

// WireResult is core.Result in transport form, the body a shard node serves
// on GET /shard/result and the coordinator merges.
type WireResult struct {
	Generation         int64         `json:"generation"`
	Clusters           []WireSummary `json:"clusters,omitempty"`
	DistinctAreas      int           `json:"distinct_areas"`
	ClusteredAreas     int           `json:"clustered_areas"`
	NoiseQueries       int           `json:"noise_queries"`
	ContradictoryAreas int           `json:"contradictory_areas"`
	ChosenEps          float64       `json:"chosen_eps"`
	DistanceEvals      int64         `json:"distance_evals"`
	DistanceCacheHits  int64         `json:"distance_cache_hits"`
	PipelineStats      *qlog.Stats   `json:"pipeline_stats,omitempty"`
}

// EncodeResult converts a miner result for transport. Nil in, nil out.
func EncodeResult(r *core.Result, gen int64) *WireResult {
	if r == nil {
		return nil
	}
	w := &WireResult{
		Generation:         gen,
		DistinctAreas:      r.DistinctAreas,
		ClusteredAreas:     r.ClusteredAreas,
		NoiseQueries:       r.NoiseQueries,
		ContradictoryAreas: r.ContradictoryAreas,
		ChosenEps:          r.ChosenEps,
		DistanceEvals:      r.DistanceEvals,
		DistanceCacheHits:  r.DistanceCacheHits,
		PipelineStats:      r.PipelineStats,
	}
	for _, c := range r.Clusters {
		ws := WireSummary{
			ID:              c.ID,
			Cardinality:     c.Cardinality,
			UserCount:       c.UserCount,
			Relations:       c.Relations,
			Categorical:     c.Categorical,
			JoinPreds:       c.JoinPreds,
			Representatives: c.Representatives,
			AreaCoverage:    c.AreaCoverage,
			ObjectCoverage:  c.ObjectCoverage,
		}
		if c.Box != nil {
			ws.Box = make(map[string]WireInterval, c.Box.Len())
			for _, dim := range c.Box.Dims() {
				ws.Box[dim] = encodeInterval(c.Box.Get(dim))
			}
		}
		w.Clusters = append(w.Clusters, ws)
	}
	return w
}

// DecodeResult converts a transport result back into the miner's shape.
func DecodeResult(w *WireResult) *core.Result {
	if w == nil {
		return nil
	}
	r := &core.Result{
		DistinctAreas:      w.DistinctAreas,
		ClusteredAreas:     w.ClusteredAreas,
		NoiseQueries:       w.NoiseQueries,
		ContradictoryAreas: w.ContradictoryAreas,
		ChosenEps:          w.ChosenEps,
		DistanceEvals:      w.DistanceEvals,
		DistanceCacheHits:  w.DistanceCacheHits,
		PipelineStats:      w.PipelineStats,
	}
	for _, ws := range w.Clusters {
		s := &aggregate.Summary{
			ID:              ws.ID,
			Cardinality:     ws.Cardinality,
			UserCount:       ws.UserCount,
			Relations:       ws.Relations,
			Categorical:     ws.Categorical,
			JoinPreds:       ws.JoinPreds,
			Representatives: ws.Representatives,
			AreaCoverage:    ws.AreaCoverage,
			ObjectCoverage:  ws.ObjectCoverage,
			Box:             interval.NewBox(),
		}
		for dim, iv := range ws.Box {
			s.Box.Set(dim, decodeInterval(iv))
		}
		r.Clusters = append(r.Clusters, s)
	}
	return r
}
