// Quickstart: extract the access areas of a handful of queries and mine a
// small statement batch — the 20-line tour of the public API.
package main

import (
	"fmt"

	skyaccess "repro"
)

func main() {
	schema := skyaccess.SkyServerSchema()
	ex := skyaccess.NewExtractor(schema)

	// 1. Single-query access areas (Sections 2 and 4 of the paper).
	queries := []string{
		// The BETWEEN example of Section 2.3.
		"SELECT * FROM SpecObjAll WHERE plate BETWEEN 296 AND 3200",
		// NOT push-down (Section 4.1).
		"SELECT * FROM Photoz WHERE NOT (z < 0 OR z > 0.1)",
		// FULL OUTER JOIN drops its constraint (Section 4.2, Example 2).
		"SELECT * FROM galSpecExtra FULL OUTER JOIN galSpecIndx ON galSpecExtra.specobjid = galSpecIndx.specObjID",
		// EXISTS flattening (Section 4.4, Lemma 4).
		"SELECT * FROM galSpecExtra WHERE bptclass > 0 AND EXISTS (SELECT * FROM galSpecIndx WHERE galSpecIndx.specObjID = galSpecExtra.specobjid)",
		// Aggregate HAVING with a vacuous constraint (Section 4.3).
		"SELECT plate, COUNT(*) FROM SpecObjAll WHERE mjd > 52000 GROUP BY plate HAVING COUNT(*) > 5",
	}
	fmt.Println("— access areas —")
	for _, q := range queries {
		area, err := ex.ExtractSQL(q)
		if err != nil {
			fmt.Printf("  error: %v\n", err)
			continue
		}
		fmt.Printf("  %s\n", area)
	}

	// 2. Mining a batch: identical and overlapping areas aggregate.
	var batch []string
	for i := 0; i < 40; i++ {
		batch = append(batch, fmt.Sprintf(
			"SELECT ra, dec FROM PhotoObjAll WHERE ra <= %d AND dec <= 10", 200+i%10))
	}
	batch = append(batch, "SELECT * FROM zooSpec WHERE p_el > 0.9") // noise

	miner := skyaccess.NewMiner(skyaccess.Config{Schema: schema})
	result := miner.MineSQL(batch)
	fmt.Println("\n— mined clusters —")
	for _, c := range result.Clusters {
		fmt.Printf("  #%d: %d queries -> %s\n", c.ID, c.Cardinality, c.Expr())
	}
	fmt.Printf("  (noise: %d queries)\n", result.NoiseQueries)
}
