package distance

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// Kernel is the flat struct-of-arrays distance engine behind the bulk
// clustering path. Add repacks compiled Profiles into columnar storage —
// interned table/column ids, flat float64 lo/hi endpoint and access-width
// fields, and per-column bitsets for categorical value membership — so
// Distance walks contiguous arrays instead of chasing per-predicate
// pointers and map iterators, and allocates nothing per pair.
//
// Storage is content-deduplicated at three levels: structurally identical
// predicates intern to one predicate id (one 64-byte record, a single cache
// line, holds everything d_pred reads), identical predicate sequences intern
// to one clause id, and identical clause sequences intern to one
// constraint-list id. Templated workloads re-issue the same constraints with
// varying table sets, so the distinct-record pool stays small and hot while
// every structural-equality test — the paper-literal identity rule, the
// clause fast path, and the whole-list upper-bound early exit that skips
// d_conj's min-matching loops outright — collapses to one integer compare.
// Each area's scaffolding (counts, list id, its first table and clause ids)
// packs into one 64-byte header, so a distance evaluation starts with two
// cache-line loads instead of a gather across offset arrays.
//
// Distance(i, j) is bit-identical to Metric.ProfileDistance on the profiles
// passed to Add, in both modes: the min-matching is order-insensitive, the
// per-pair float expressions are the same, and the early exits only return
// 0 where the pointer path provably computes exact 0. The equivalence is
// asserted pair-for-pair by TestKernelMatchesProfileDistance.
//
// Add is not safe for concurrent use; Distance is (it only reads), which is
// what DBSCAN's parallel region queries require. Indices are append-only:
// the incremental miner keeps one Kernel alive across epochs and appends
// each epoch's new profiles.
type Kernel struct {
	mode Mode
	// bias/scale express both modes' different-column d_pred as one FMA:
	// endpoint 1 - x = 1 + (-1)*x, paper-literal x = 0 + 1*x (exact in IEEE
	// arithmetic). Fixed at construction so the hot loops never branch on mode.
	bias, scale float64

	// Interning state (build time only).
	tabID   map[string]int32
	colID   map[string]int32
	valBit  map[string]int32 // column + "\x00" + value -> per-column bit
	colBits map[int32]int32  // column id -> bits assigned so far
	predID  map[predKey]int32
	clauseI map[string]int32 // pid sequence -> clause id
	listI   map[string]int32 // clause-id sequence -> constraint-list id

	// hdr holds one packed header per DISTINCT (constraint list, relation
	// set) pair; ref maps each added area to its header. Areas repeat
	// heavily in templated logs, so the indirection shrinks the random-read
	// footprint of a pair eval from one header per area to one header per
	// distinct shape — the 4-byte ref reads stay cache-resident. tabs is
	// the spill storage for header table ids.
	hdr  []areaHdr
	ref  []int32
	hdrI map[string]int32 // (lid, table ids) -> header index
	tabs []int32

	// Per distinct clause: its predicate ids, plus a 32-byte summary
	// (see clauseHot) that lets disjoint-column clause pairs skip
	// min-matching entirely. prFr/prTg mirror prIDs with each predicate's
	// access fraction and tag laid out clause-contiguously, so the
	// min-matching inner loops stream sequential memory instead of
	// gathering hot[prIDs[y]] through a dependent load.
	prOff []int32 // clause c owns prIDs[prOff[c]:prOff[c+1]]
	prIDs []int32
	prFr  []float64
	prTg  []uint16
	chot  []clauseHot

	// lch replicates each distinct constraint list's clause summaries into
	// one contiguous run (start per list in listStart, indexed by list id).
	// d_conj walks a list's clauses in order, so the run turns its clause
	// loads into a short sequential stream the prefetcher hides, instead of
	// one random chot line per clause id. Clause identity rides along in
	// each summary's off field (unique per distinct clause).
	lch       []clauseHot
	listStart []int32

	// Per distinct predicate: one packed record (see predRec), plus a tiny
	// 16-byte hot entry (tag + access fraction) that resolves the
	// overwhelmingly common different-column d_pred case from L1 without
	// touching recs, plus a 32-byte numeric mirror (see predNum) so the
	// dominant residual case — same-column numeric pairs — stays L1-resident
	// at twice the record density of recs.
	recs []predRec
	hot  []predHot
	num  []predNum

	// setWords holds all categorical bitsets back to back; bit positions are
	// interned per column, so same-column sets intersect by word AND.
	setWords []uint64

	// Build-time scratch, reused across Add calls.
	keyBuf []byte
	setBuf []uint64
	clBuf  []int32
	tabBuf []int32
}

// areaHdr packs one area's distance scaffolding into 32 bytes — half a
// cache line, so a random pair of headers costs at most two lines: counts,
// the interned constraint-list id (the O(1) early-exit key), the offset of
// the list's clause run in lch, and the relation set as a bitmask over
// interned table ids. tabMask is non-zero exactly when the area has tables
// and every id fits in 64 bits — then d_tables is one AND+popcount; the
// rare overflow area (mask 0, tabN > 0) falls back to a sorted merge over
// the spill ids, which Add records for every area.
type areaHdr struct {
	tabN, clN int32
	lid       int32
	lchOff    int32 // start of the list's clause run in lch
	tabOff    int32 // offset of the area's sorted ids in tabs
	_         int32
	tabMask   uint64
}

// tables returns the area's sorted interned table ids.
func (h *areaHdr) tables(k *Kernel) []int32 {
	return k.tabs[h.tabOff : h.tabOff+h.tabN]
}

// clInline is the number of predicate (frac, tag) pairs a clauseHot carries
// inline. SkyServer clauses are overwhelmingly 1-4 predicates, so d_disj
// usually reads one cache line per clause; longer clauses stream from the
// prFr/prTg spill arrays instead.
const clInline = 4

// clauseHot summarises one distinct clause for d_disj in exactly 64 bytes —
// one cache line: the OR of its predicates' column bits (exact while column
// ids stay under 64), the extreme access fraction for the kernel's mode
// (max for endpoint, min for paper-literal — the kernel's mode is fixed at
// construction), the predicate span, and up to clInline inline (frac, tag)
// pairs. plain is 1 when every predicate is an ordinary (non-col-col)
// predicate on a maskable column — then, for a clause pair with disjoint
// masks, every cross pair is the different-column d_pred case and both
// min-matching directions collapse to linear scans against the other
// side's extreme fraction.
type clauseHot struct {
	mask  uint64
	ext   float64
	fr    [clInline]float64
	tg    [clInline]uint16
	off   int32
	n     int16
	plain uint8
	_     uint8
}

// predRec packs every field d_pred reads into 64 bytes so a random
// predicate access costs one cache line instead of a gather across parallel
// columns.
type predRec struct {
	lo, hi, w, frac float64
	col, col2       int32 // col2 is -1 unless kind == kindColCol
	card, nset      int32 // categorical |access(a)| and value-set size
	set, setw       int32 // word offset and count into setWords
	kind, op, flags uint8 // flags: bit0 = LoOpen, bit1 = HiOpen
	_               [5]byte
}

// predNum is the 32-byte mirror of the fields the same-column numeric
// d_pred reads — half a predRec, so twice as many predicates share a cache
// line. kind is 0 (kindNumeric) exactly when the full record's kind is, so
// the both-numeric dispatch needs no recs load at all.
type predNum struct {
	lo, hi, w float64
	col       int32
	kind      uint8
	_         [3]byte
}

// predHot is the L1-resident per-predicate hot entry: tag packs
// (column id << 1 | is-col-col), frac the access fraction. Two predicates
// with distinct tags and both low bits clear are ordinary predicates on
// different columns, whose d_pred is a function of the fracs alone.
type predHot struct {
	frac float64
	tag  uint32
	_    uint32
}

// predKey is the interning identity of a predicate: exactly the equality
// relation predProfilesEqual defines (fields a kind does not use are always
// zero-valued in compiled profiles, so one uniform key is safe).
type predKey struct {
	kind, op, flags uint8
	col, col2       int32
	lo, hi, w, frac float64
	card            int32
	set             string // categorical word image; "" otherwise
}

// NewKernel returns an empty kernel for the given d_pred mode.
func NewKernel(mode Mode) *Kernel {
	bias, scale := 1.0, -1.0
	if mode == ModePaperLiteral {
		bias, scale = 0.0, 1.0
	}
	return &Kernel{
		mode:    mode,
		bias:    bias,
		scale:   scale,
		tabID:   make(map[string]int32),
		colID:   make(map[string]int32),
		valBit:  make(map[string]int32),
		colBits: make(map[int32]int32),
		predID:  make(map[predKey]int32),
		clauseI: make(map[string]int32),
		listI:   make(map[string]int32),
		hdrI:    make(map[string]int32),
		prOff:   []int32{0},
	}
}

// N returns the number of areas added so far.
func (k *Kernel) N() int { return len(k.ref) }

// Add repacks one compiled profile and returns its kernel index.
func (k *Kernel) Add(p *Profile) int {
	var h areaHdr
	h.tabN = int32(len(p.Tables))
	k.tabBuf = k.tabBuf[:0]
	maskable := true
	for _, t := range p.Tables {
		id := k.intern(k.tabID, t)
		k.tabBuf = append(k.tabBuf, id)
		if id < 64 {
			h.tabMask |= 1 << uint(id)
		} else {
			maskable = false
		}
	}
	if !maskable {
		h.tabMask = 0
	}
	sort.Slice(k.tabBuf, func(i, j int) bool { return k.tabBuf[i] < k.tabBuf[j] })

	h.clN = int32(len(p.clauses))
	k.clBuf = k.clBuf[:0]
	for ci := range p.clauses {
		k.clBuf = append(k.clBuf, k.internClause(p.clauses[ci]))
	}
	h.lid = k.internIDs(k.listI, k.clBuf)
	if int(h.lid) == len(k.listStart) {
		// First sight of this constraint list: lay its clause summaries out
		// back to back so d_conj streams them.
		k.listStart = append(k.listStart, int32(len(k.lch)))
		for _, c := range k.clBuf {
			k.lch = append(k.lch, k.chot[c])
		}
	}
	h.lchOff = k.listStart[h.lid]

	// Intern the header itself: every field of h is a function of
	// (constraint list, relation set), so areas sharing both — the common
	// case in templated logs — share one header and ref is all that grows.
	k.keyBuf = k.keyBuf[:0]
	k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(h.lid))
	for _, id := range k.tabBuf {
		k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(id))
	}
	hid, ok := k.hdrI[string(k.keyBuf)]
	if !ok {
		h.tabOff = int32(len(k.tabs))
		k.tabs = append(k.tabs, k.tabBuf...)
		hid = int32(len(k.hdr))
		k.hdrI[string(k.keyBuf)] = hid
		k.hdr = append(k.hdr, h)
	}
	k.ref = append(k.ref, hid)
	return len(k.ref) - 1
}

func (k *Kernel) intern(m map[string]int32, s string) int32 {
	if id, ok := m[s]; ok {
		return id
	}
	id := int32(len(m))
	m[s] = id
	return id
}

// internIDs interns an id sequence (order-sensitive, like the positional
// equality the pointer path's structural checks use).
func (k *Kernel) internIDs(m map[string]int32, ids []int32) int32 {
	k.keyBuf = k.keyBuf[:0]
	for _, id := range ids {
		k.keyBuf = binary.LittleEndian.AppendUint32(k.keyBuf, uint32(id))
	}
	if id, ok := m[string(k.keyBuf)]; ok {
		return id
	}
	id := int32(len(m))
	m[string(k.keyBuf)] = id
	return id
}

// internClause interns one clause's predicate sequence, storing the pid
// list on first sight.
func (k *Kernel) internClause(cl clauseProfile) int32 {
	pidStart := len(k.prIDs)
	for pi := range cl {
		k.prIDs = append(k.prIDs, k.internPred(&cl[pi]))
	}
	pids := k.prIDs[pidStart:]
	id := k.internIDs(k.clauseI, pids)
	if int(id) < len(k.prOff)-1 {
		// Known clause: drop the duplicate pid run.
		k.prIDs = k.prIDs[:pidStart]
		return id
	}
	k.prOff = append(k.prOff, int32(len(k.prIDs)))
	ch := clauseHot{off: int32(pidStart), n: int16(len(pids)), ext: math.Inf(-1)}
	if k.mode == ModePaperLiteral {
		ch.ext = math.Inf(1)
	}
	if len(pids) > 0 {
		ch.plain = 1
	}
	for i, pid := range pids {
		h := &k.hot[pid]
		col := h.tag >> 1
		if h.tag&1 == 1 || col >= 64 {
			ch.plain = 0
		}
		ch.mask |= 1 << (col & 63)
		if k.mode == ModePaperLiteral {
			if h.frac < ch.ext {
				ch.ext = h.frac
			}
		} else if h.frac > ch.ext {
			ch.ext = h.frac
		}
		k.prFr = append(k.prFr, h.frac)
		k.prTg = append(k.prTg, tag16(h.tag))
		if i < clInline {
			ch.fr[i] = h.frac
			ch.tg[i] = tag16(h.tag)
		}
	}
	k.chot = append(k.chot, ch)
	return id
}

// tag16 narrows a predicate tag to the 16-bit hot-loop form. Tags that do
// not fit map to the odd sentinel 0xFFFF: the different-column fast path
// requires two *even* distinct tags, so sentinel pairs always fall through
// to predDist — conservative, never wrong. Narrowing below the sentinel is
// injective, so equal 16-bit tags imply equal columns.
func tag16(tag uint32) uint16 {
	if tag >= 0xFFFF {
		return 0xFFFF
	}
	return uint16(tag)
}

// internPred interns one compiled predicate, appending its packed record
// (and categorical bitset words) on first sight.
func (k *Kernel) internPred(p *predProfile) int32 {
	var fl uint8
	if p.iv.LoOpen {
		fl |= 1
	}
	if p.iv.HiOpen {
		fl |= 2
	}
	col := k.intern(k.colID, p.column)
	col2 := int32(-1)
	if p.kind == kindColCol {
		col2 = k.intern(k.colID, p.column2)
	}
	k.setBuf = k.setBuf[:0]
	if p.kind == kindString && len(p.strSet) > 0 {
		maxBit := int32(-1)
		for v := range p.strSet {
			if b := k.internBit(col, p.column, v); b > maxBit {
				maxBit = b
			}
		}
		for i := int32(0); i <= maxBit/64; i++ {
			k.setBuf = append(k.setBuf, 0)
		}
		for v := range p.strSet {
			b := k.internBit(col, p.column, v)
			k.setBuf[b/64] |= 1 << uint(b%64)
		}
	}
	k.keyBuf = k.keyBuf[:0]
	for _, w := range k.setBuf {
		k.keyBuf = binary.LittleEndian.AppendUint64(k.keyBuf, w)
	}
	key := predKey{
		kind: uint8(p.kind), op: uint8(p.op), flags: fl,
		col: col, col2: col2,
		lo: p.iv.Lo, hi: p.iv.Hi, w: p.accessWidth, frac: p.frac,
		card: int32(p.accessCard), set: string(k.keyBuf),
	}
	if id, ok := k.predID[key]; ok {
		return id
	}
	id := int32(len(k.recs))
	k.predID[key] = id
	off := int32(len(k.setWords))
	k.setWords = append(k.setWords, k.setBuf...)
	k.recs = append(k.recs, predRec{
		lo: p.iv.Lo, hi: p.iv.Hi, w: p.accessWidth, frac: p.frac,
		col: col, col2: col2,
		card: int32(p.accessCard), nset: int32(len(p.strSet)),
		set: off, setw: int32(len(k.setBuf)),
		kind: uint8(p.kind), op: uint8(p.op), flags: fl,
	})
	tag := uint32(col) << 1
	if p.kind == kindColCol {
		tag |= 1
	}
	k.hot = append(k.hot, predHot{frac: p.frac, tag: tag})
	k.num = append(k.num, predNum{
		lo: p.iv.Lo, hi: p.iv.Hi, w: p.accessWidth,
		col: col, kind: uint8(p.kind),
	})
	return id
}

// internBit assigns (or fetches) the bit position of a categorical value
// within its column's bit space. Only same-column sets are ever compared,
// so positions need not be unique across columns.
func (k *Kernel) internBit(col int32, column, val string) int32 {
	key := column + "\x00" + val
	if b, ok := k.valBit[key]; ok {
		return b
	}
	b := k.colBits[col]
	k.colBits[col] = b + 1
	k.valBit[key] = b
	return b
}

// Distance computes d_tables + d_conj between areas i and j, bit-identical
// to Metric.ProfileDistance on the corresponding profiles.
func (k *Kernel) Distance(i, j int) float64 {
	kernelEvalsTotal.Inc()
	hi, hj := &k.hdr[k.ref[i]], &k.hdr[k.ref[j]]
	return k.dTables(hi, hj) + k.dConj(hi, hj)
}

func (k *Kernel) dTables(hi, hj *areaHdr) float64 {
	n1, n2 := int(hi.tabN), int(hj.tabN)
	if n1 == 0 && n2 == 0 {
		return 0
	}
	var inter int
	if (n1 == 0 || hi.tabMask != 0) && (n2 == 0 || hj.tabMask != 0) {
		// Both relation sets fit their header masks (an empty side's zero
		// mask intersects to zero, which is exactly its merge count):
		// the Jaccard intersection is one AND+popcount over bits the header
		// load already brought in.
		inter = bits.OnesCount64(hi.tabMask & hj.tabMask)
	} else {
		t1 := hi.tables(k)
		t2 := hj.tables(k)
		a, b := 0, 0
		for a < n1 && b < n2 {
			switch {
			case t1[a] == t2[b]:
				inter++
				a++
				b++
			case t1[a] < t2[b]:
				a++
			default:
				b++
			}
		}
	}
	union := n1 + n2 - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// matchBuf is the stack capacity of the min-matching best arrays in the
// general (large) path. The §6.6 predicate cap (default 35) keeps clause
// and predicate counts well under it; pathological areas beyond it fall
// back to a heap allocation.
const matchBuf = 64

// smallMatch is the side length under which min-matching runs on fixed
// 8-wide stack buffers instead of the matchBuf frames — the common case by
// far, and the zeroing of two 512-byte frames it avoids is measurable.
const smallMatch = 8

func (k *Kernel) dConj(hi, hj *areaHdr) float64 {
	n1, n2 := int(hi.clN), int(hj.clN)
	if n1 == 0 && n2 == 0 {
		return 0
	}
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// Upper-bound early exit: structurally identical constraint lists are at
	// distance exactly 0 (every clause min-matches its twin at 0), so the
	// O(n1·n2) loop below can be skipped outright — one integer compare,
	// thanks to whole-list interning. This is what makes re-evaluations
	// against cluster representatives nearly free.
	if hi.lid == hj.lid {
		kernelEarlyExitTotal.Inc()
		return 0
	}
	// Clause identity check: a clause id owns exactly one prIDs run, so two
	// summaries describe the same clause iff their off fields match — read
	// straight from the lch lines the loops are already streaming.
	// One pass over the clause pairs serves both min-matching directions;
	// the pointer path walks them twice. Distances are >= 0, so a pair whose
	// row and column minima both reached 0 cannot improve either. A
	// single-clause side needs no best arrays: its minimum and the other
	// side's per-column values fall out of one linear scan with the exact
	// same float operations, so results stay bit-identical.
	inf := math.Inf(1)
	// Each area's clause summaries sit in one contiguous lch run (see Add),
	// so both sides stream short sequential spans instead of gathering one
	// random chot line per clause id.
	ch1 := k.lch[hi.lchOff : int(hi.lchOff)+n1]
	ch2 := k.lch[hj.lchOff : int(hj.lchOff)+n2]
	if n1 == 1 {
		hx := &ch1[0]
		c1 := hx.off
		min, sum := inf, 0.0
		for y := 0; y < n2; y++ {
			var dd float64
			if c1 != ch2[y].off {
				dd = k.dDisj(hx, &ch2[y])
			}
			if dd < min {
				min = dd
			}
			sum += dd
		}
		return (min + sum) / float64(n1+n2)
	}
	if n2 == 1 {
		hy := &ch2[0]
		c2 := hy.off
		min, sum := inf, 0.0
		for x := 0; x < n1; x++ {
			var dd float64
			if ch1[x].off != c2 {
				dd = k.dDisj(&ch1[x], hy)
			}
			if dd < min {
				min = dd
			}
			sum += dd
		}
		return (sum + min) / float64(n1+n2)
	}
	if n1 <= smallMatch && n2 <= smallMatch {
		// Row minima live in a scalar (rows finish in order); only the column
		// minima need an array. The zero-skip works unchanged: rmin is
		// exactly what rb[x] would hold for the row in flight.
		var cb [smallMatch]float64
		for y := 0; y < n2; y++ {
			cb[y] = inf
		}
		sumR := 0.0
		for x := 0; x < n1; x++ {
			hx := &ch1[x]
			c1 := hx.off
			rmin := inf
			for y := 0; y < n2; y++ {
				if rmin == 0 && cb[y] == 0 {
					continue
				}
				var dd float64
				if c1 != ch2[y].off {
					dd = k.dDisj(hx, &ch2[y])
				}
				if dd < rmin {
					rmin = dd
				}
				if dd < cb[y] {
					cb[y] = dd
				}
			}
			sumR += rmin
		}
		sumC := 0.0
		for y := 0; y < n2; y++ {
			sumC += cb[y]
		}
		return (sumR + sumC) / float64(n1+n2)
	}
	var rbuf, cbuf [matchBuf]float64
	bestR, bestC := matchSlices(&rbuf, &cbuf, n1, n2)
	for x := 0; x < n1; x++ {
		hx := &ch1[x]
		c1 := hx.off
		for y := 0; y < n2; y++ {
			if bestR[x] == 0 && bestC[y] == 0 {
				continue
			}
			var dd float64
			if c1 != ch2[y].off {
				dd = k.dDisj(hx, &ch2[y])
			}
			if dd < bestR[x] {
				bestR[x] = dd
			}
			if dd < bestC[y] {
				bestC[y] = dd
			}
		}
	}
	return matchSum(bestR, bestC)
}

// dDisj min-matches the predicates of two distinct clauses (equal clause
// ids short-circuit in dConj, which passes the clauses' hot summaries).
func (k *Kernel) dDisj(hx, hy *clauseHot) float64 {
	n1, n2 := int(hx.n), int(hy.n)
	if n1 == 0 && n2 == 0 {
		return 0
	}
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// The different-column fast path is inlined by hand into each loop
	// below (the inliner refuses dPred): ids equal -> 0; tags distinct and
	// neither col-col -> bias + scale*(frac product), which is bit-identical
	// to the branchy form (1 + (-1)*x == 1 - x and 0 + x == x exactly in
	// IEEE arithmetic); everything else drops into predDist. Fractions and
	// tags come from the clause record's own cache line when the clause is
	// short (the usual case), else stream from the clause-contiguous spill
	// mirrors — the hot loops never chase prIDs through the hot array.
	var fr1, fr2 []float64
	var tg1, tg2 []uint16
	if n1 <= clInline {
		fr1, tg1 = hx.fr[:n1], hx.tg[:n1]
	} else {
		fr1, tg1 = k.prFr[hx.off:hx.off+int32(n1)], k.prTg[hx.off:hx.off+int32(n1)]
	}
	if n2 <= clInline {
		fr2, tg2 = hy.fr[:n2], hy.tg[:n2]
	} else {
		fr2, tg2 = k.prFr[hy.off:hy.off+int32(n2)], k.prTg[hy.off:hy.off+int32(n2)]
	}
	inf := math.Inf(1)
	bias, scale := k.bias, k.scale
	if hx.plain&hy.plain == 1 && hx.mask&hy.mask == 0 {
		// Disjoint column sets, all ordinary predicates: every cross pair is
		// the different-column case, monotone in the other predicate's frac
		// (fracs are >= 0), so each row's minimum is attained exactly at the
		// other clause's extreme fraction — the same float expression the
		// pair loop would have produced for that pair. Both directions
		// reduce to linear scans; accumulation order matches the pair loop.
		exta, extb := hx.ext, hy.ext
		sumR := 0.0
		for x := 0; x < n1; x++ {
			sumR += bias + scale*(fr1[x]*extb)
		}
		sumC := 0.0
		for y := 0; y < n2; y++ {
			sumC += bias + scale*(exta*fr2[y])
		}
		return (sumR + sumC) / float64(n1+n2)
	}
	// Partial collapse: even when the clause pair can't take the linear-scan
	// path above, any single ordinary predicate (even tag — the 0xFFFF
	// sentinel is odd, so truncated tags never qualify) facing an all-plain
	// partner clause whose mask misses its column meets only
	// different-column partners: its whole row (or column) needs no per-pair
	// checks, just the FMA. Only the partner side must be plain — the
	// predicate's own clause may hold col-col or high-column predicates.
	// A column id >= 64 shifts the partner mask to zero, which is correct:
	// a plain partner holds columns < 64 only, so the columns really differ.
	// Predicate ids (needed only when a pair falls through to predDist or
	// the equality check) are sliced lazily so the collapsed loops never
	// touch prIDs at all.
	if n1 == 1 {
		ta, fa := tg1[0], fr1[0]
		min, sum := inf, 0.0
		if ta&1 == 0 && hy.plain == 1 && hy.mask>>(ta>>1)&1 == 0 {
			for y := 0; y < n2; y++ {
				d := bias + scale*(fa*fr2[y])
				if d < min {
					min = d
				}
				sum += d
			}
			return (min + sum) / float64(n1+n2)
		}
		pa := k.prIDs[hx.off]
		ps2 := k.prIDs[hy.off : hy.off+int32(n2)]
		for y := 0; y < n2; y++ {
			var d float64
			if tb := tg2[y]; ta != tb && (ta|tb)&1 == 0 {
				d = bias + scale*(fa*fr2[y])
			} else if pb := ps2[y]; pa != pb {
				d = k.predDist(pa, pb)
			}
			if d < min {
				min = d
			}
			sum += d
		}
		return (min + sum) / float64(n1+n2)
	}
	if n2 == 1 {
		tb, fb := tg2[0], fr2[0]
		min, sum := inf, 0.0
		if tb&1 == 0 && hx.plain == 1 && hx.mask>>(tb>>1)&1 == 0 {
			for x := 0; x < n1; x++ {
				d := bias + scale*(fr1[x]*fb)
				if d < min {
					min = d
				}
				sum += d
			}
			return (sum + min) / float64(n1+n2)
		}
		pb := k.prIDs[hy.off]
		ps1 := k.prIDs[hx.off : hx.off+int32(n1)]
		for x := 0; x < n1; x++ {
			var d float64
			if ta := tg1[x]; ta != tb && (ta|tb)&1 == 0 {
				d = bias + scale*(fr1[x]*fb)
			} else if pa := ps1[x]; pa != pb {
				d = k.predDist(pa, pb)
			}
			if d < min {
				min = d
			}
			sum += d
		}
		return (sum + min) / float64(n1+n2)
	}
	if n1 <= smallMatch && n2 <= smallMatch {
		// The row minimum lives in a scalar (rows finish before the next
		// starts), so only the column minima need an array; sumR accumulates
		// per finished row in the same order smallSum would have read it.
		var cb [smallMatch]float64
		for y := 0; y < n2; y++ {
			cb[y] = inf
		}
		// No zero-skip here: predicate distances rarely bottom out at 0, so
		// the two loads per pair cost more than the skips save (and since
		// distances are >= 0, evaluating a skippable pair cannot change any
		// minimum — results are identical either way).
		ps1 := k.prIDs[hx.off : hx.off+int32(n1)]
		ps2 := k.prIDs[hy.off : hy.off+int32(n2)]
		sumR := 0.0
		for x := 0; x < n1; x++ {
			ta, fa := tg1[x], fr1[x]
			rmin := inf
			if ta&1 == 0 && hy.plain == 1 && hy.mask>>(ta>>1)&1 == 0 {
				// Ordinary predicate, column outside the plain partner's mask:
				// every partner is the different-column case, so the row runs
				// check-free.
				for y := 0; y < n2; y++ {
					d := bias + scale*(fa*fr2[y])
					if d < rmin {
						rmin = d
					}
					if d < cb[y] {
						cb[y] = d
					}
				}
				sumR += rmin
				continue
			}
			pa := ps1[x]
			for y := 0; y < n2; y++ {
				var d float64
				if tb := tg2[y]; ta != tb && (ta|tb)&1 == 0 {
					d = bias + scale*(fa*fr2[y])
				} else if pb := ps2[y]; pa != pb {
					d = k.predDist(pa, pb)
				}
				if d < rmin {
					rmin = d
				}
				if d < cb[y] {
					cb[y] = d
				}
			}
			sumR += rmin
		}
		sumC := 0.0
		for y := 0; y < n2; y++ {
			sumC += cb[y]
		}
		return (sumR + sumC) / float64(n1+n2)
	}
	ps1 := k.prIDs[hx.off : hx.off+int32(n1)]
	ps2 := k.prIDs[hy.off : hy.off+int32(n2)]
	var rbuf, cbuf [matchBuf]float64
	bestR, bestC := matchSlices(&rbuf, &cbuf, n1, n2)
	for x := 0; x < n1; x++ {
		for y := 0; y < n2; y++ {
			if bestR[x] == 0 && bestC[y] == 0 {
				continue
			}
			d := k.dPred(ps1[x], ps2[y])
			if d < bestR[x] {
				bestR[x] = d
			}
			if d < bestC[y] {
				bestC[y] = d
			}
		}
	}
	return matchSum(bestR, bestC)
}

// matchSlices sizes the min-matching best arrays out of the caller's stack
// buffers (heap only past matchBuf) and fills them with +Inf.
func matchSlices(rbuf, cbuf *[matchBuf]float64, n1, n2 int) ([]float64, []float64) {
	var bestR, bestC []float64
	if n1 <= matchBuf {
		bestR = rbuf[:n1]
	} else {
		bestR = make([]float64, n1)
	}
	if n2 <= matchBuf {
		bestC = cbuf[:n2]
	} else {
		bestC = make([]float64, n2)
	}
	inf := math.Inf(1)
	for x := range bestR {
		bestR[x] = inf
	}
	for y := range bestC {
		bestC[y] = inf
	}
	return bestR, bestC
}

// matchSum folds both directions' minima into the min-matching average —
// the same operand order as the pointer path's two passes combined with one
// commutative addition, keeping results bit-identical.
func matchSum(bestR, bestC []float64) float64 {
	sumR, sumC := 0.0, 0.0
	for x := range bestR {
		sumR += bestR[x]
	}
	for y := range bestC {
		sumC += bestC[y]
	}
	return (sumR + sumC) / float64(len(bestR)+len(bestC))
}

// smallSum is matchSum over the fixed small buffers.
func smallSum(rb, cb *[smallMatch]float64, n1, n2 int) float64 {
	sumR, sumC := 0.0, 0.0
	for x := 0; x < n1; x++ {
		sumR += rb[x]
	}
	for y := 0; y < n2; y++ {
		sumC += cb[y]
	}
	return (sumR + sumC) / float64(n1+n2)
}

// dPred is the per-pair hot path, kept small enough to inline into the
// min-matching loops: interned ids make structural equality one compare
// (the paper-literal identity rule; in endpoint mode the full computation
// provably yields exact 0 for equal predicates), and a different-column
// pair — the overwhelmingly common case — needs only the L1-resident
// tag and frac arrays. Everything else drops into predDist.
func (k *Kernel) dPred(a, b int32) float64 {
	if a == b {
		return 0
	}
	ha, hb := &k.hot[a], &k.hot[b]
	if ha.tag != hb.tag && (ha.tag|hb.tag)&1 == 0 {
		occupied := ha.frac * hb.frac
		if k.mode == ModePaperLiteral {
			return occupied
		}
		return 1 - occupied
	}
	return k.predDist(a, b)
}

// predDist handles the residual d_pred cases from the packed records:
// col-col predicates, same-column pairs, and (defensively) the
// different-column case dPred already covers. The branch order follows
// the residual-case frequency: tag equality routes same-column pairs
// here, and most columns are numeric, so both-numeric leads.
func (k *Kernel) predDist(a, b int32) float64 {
	na, nb := &k.num[a], &k.num[b]
	if na.kind|nb.kind == 0 { // both kindNumeric
		if na.col != nb.col {
			return k.bias + k.scale*(k.hot[a].frac*k.hot[b].frac)
		}
		// The endpoint-mode body of symNumeric, unrolled here to spare the
		// dominant residual case a second call and the full-record loads.
		if wa, wb := na.w, nb.w; wa > 0 && wb > 0 && k.mode != ModePaperLiteral {
			d := math.Abs(na.lo - nb.lo)
			if dh := math.Abs(na.hi - nb.hi); dh > d {
				d = dh
			}
			da := d / wa
			if da > 1 {
				da = 1
			}
			db := d / wb
			if db > 1 {
				db = 1
			}
			return (da + db) / 2
		}
		return k.symNumeric(&k.recs[a], &k.recs[b])
	}
	ra, rb := &k.recs[a], &k.recs[b]
	ka, kb := predKind(ra.kind), predKind(rb.kind)
	if ka == kindColCol || kb == kindColCol {
		if ka != kb {
			if k.mode == ModePaperLiteral {
				return 0
			}
			return 1
		}
		same := ra.col == rb.col && ra.col2 == rb.col2
		switch {
		case same && ra.op == rb.op:
			return 0
		case same:
			return 0.5
		default:
			return 1
		}
	}
	if ra.col != rb.col {
		occupied := ra.frac * rb.frac
		if k.mode == ModePaperLiteral {
			return occupied
		}
		return 1 - occupied
	}
	if ka != kb {
		if k.mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if ka == kindString {
		return k.dPredCategorical(ra, rb)
	}
	return k.symNumeric(ra, rb)
}

// symNumeric is the symmetric numeric d_pred,
// (dirNumeric(a,b)+dirNumeric(b,a))/2, with the direction-independent part
// computed once: the endpoint deltas (and the literal-mode intersection) are
// bit-identical in both directions, so only the per-side width division
// differs. Zero-width records keep the two-call form for its equality check.
func (k *Kernel) symNumeric(ra, rb *predRec) float64 {
	if ra.w <= 0 || rb.w <= 0 {
		return (k.dirNumeric(ra, rb) + k.dirNumeric(rb, ra)) / 2
	}
	if k.mode == ModePaperLiteral {
		lo, hi := ra.lo, ra.hi
		if rb.lo > lo {
			lo = rb.lo
		}
		if rb.hi < hi {
			hi = rb.hi
		}
		if hi <= lo {
			return 0
		}
		ov := hi - lo
		return (ov/ra.w + ov/rb.w) / 2
	}
	d := math.Abs(ra.lo - rb.lo)
	if dh := math.Abs(ra.hi - rb.hi); dh > d {
		d = dh
	}
	da := d / ra.w
	if da > 1 {
		da = 1
	}
	db := d / rb.w
	if db > 1 {
		db = 1
	}
	return (da + db) / 2
}

// dirNumeric mirrors Metric.dirNumeric over the packed records. Compiled
// intervals are never empty (compileNumeric collapses empty clips to a
// point), so width arithmetic on raw endpoints matches interval.OverlapLen,
// whose measure ignores endpoint openness.
func (k *Kernel) dirNumeric(ra, rb *predRec) float64 {
	w := ra.w
	if w <= 0 {
		if ra.lo == rb.lo && ra.hi == rb.hi && ra.flags == rb.flags {
			return 0
		}
		if k.mode == ModePaperLiteral {
			return 0
		}
		return 1
	}
	if k.mode == ModePaperLiteral {
		lo, hi := ra.lo, ra.hi
		if rb.lo > lo {
			lo = rb.lo
		}
		if rb.hi < hi {
			hi = rb.hi
		}
		if hi <= lo {
			return 0
		}
		return (hi - lo) / w
	}
	d := math.Abs(ra.lo - rb.lo)
	if dh := math.Abs(ra.hi - rb.hi); dh > d {
		d = dh
	}
	d /= w
	if d > 1 {
		d = 1
	}
	return d
}

func (k *Kernel) dPredCategorical(ra, rb *predRec) float64 {
	var inter int
	if ra.setw == 1 && rb.setw == 1 {
		// Single-word sets — every SkyServer categorical column by far —
		// intersect without slice setup.
		inter = bits.OnesCount64(k.setWords[ra.set] & k.setWords[rb.set])
	} else {
		wa := k.setWords[ra.set : ra.set+ra.setw]
		wb := k.setWords[rb.set : rb.set+rb.setw]
		n := len(wa)
		if len(wb) < n {
			n = len(wb)
		}
		for i := 0; i < n; i++ {
			inter += bits.OnesCount64(wa[i] & wb[i])
		}
	}
	if k.mode == ModePaperLiteral {
		return (dirCard(inter, ra.card) + dirCard(inter, rb.card)) / 2
	}
	union := int(ra.nset) + int(rb.nset) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

func dirCard(inter int, card int32) float64 {
	if card <= 0 {
		return 0
	}
	return float64(inter) / float64(card)
}
