package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the full exposition output for a registry with
// one of every metric type: stable name ordering, HELP escaping, histogram
// bucket cumulativeness and the +Inf/_sum/_count trailer.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "requests\nwith a newline and a back\\slash")
	c.Add(7)
	g := r.NewGauge("test_queue_depth", "queue depth")
	g.Set(3.5)
	r.NewGaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 42 })
	r.NewCounterFunc("test_evals_total", "externally counted evals", func() float64 { return 19 })
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le 0.01
	h.Observe(0.05)  // le 0.1
	h.Observe(0.05)  // le 0.1
	h.Observe(0.5)   // le 1
	h.Observe(5)     // +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_evals_total externally counted evals
# TYPE test_evals_total counter
test_evals_total 19
# HELP test_latency_seconds latency
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 4
test_latency_seconds_bucket{le="+Inf"} 5
test_latency_seconds_sum 5.605
test_latency_seconds_count 5
# HELP test_queue_depth queue depth
# TYPE test_queue_depth gauge
test_queue_depth 3.5
# HELP test_requests_total requests\nwith a newline and a back\\slash
# TYPE test_requests_total counter
test_requests_total 7
# HELP test_uptime_seconds uptime
# TYPE test_uptime_seconds gauge
test_uptime_seconds 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramCumulative checks the le-bucket invariants hold for every
// prefix: each bucket count is non-decreasing and +Inf equals _count.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("cum_seconds", "h", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 3, 7, 100, 2} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	var infCount, count int64
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "cum_seconds_bucket"):
			var n int64
			if _, err := fscanTail(line, &n); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if n < prev {
				t.Errorf("bucket count decreased: %q after %d", line, prev)
			}
			prev = n
			if strings.Contains(line, `le="+Inf"`) {
				infCount = n
			}
		case strings.HasPrefix(line, "cum_seconds_count"):
			if _, err := fscanTail(line, &count); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if infCount != 7 || count != 7 {
		t.Errorf("+Inf bucket = %d, _count = %d, want 7", infCount, count)
	}
}

// fscanTail parses the final whitespace-separated field of a sample line.
func fscanTail(line string, n *int64) (int, error) {
	fields := strings.Fields(line)
	return fieldToInt(fields[len(fields)-1], n)
}

func fieldToInt(s string, n *int64) (int, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, errBadDigit
		}
		v = v*10 + int64(c-'0')
	}
	*n = v
	return 1, nil
}

var errBadDigit = &parseDigitError{}

type parseDigitError struct{}

func (*parseDigitError) Error() string { return "non-digit in count" }

// TestRegisterIdempotent verifies re-registering a name returns the same
// metric and a type clash panics.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup_total", "a")
	b := r.NewCounter("dup_total", "b")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type clash did not panic")
		}
	}()
	r.NewGauge("dup_total", "clash")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	NewRegistry().NewCounter("bad name!", "x")
}

// TestSnapshot checks the flat view used by the JSON handler and the
// bench-drift gate.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("snap_total", "c").Add(3)
	r.NewGauge("snap_depth", "g").Set(1.5)
	h := r.NewHistogram("snap_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	got := r.Snapshot()
	want := map[string]float64{
		"snap_total":         3,
		"snap_depth":         1.5,
		"snap_seconds_count": 2,
		"snap_seconds_sum":   2.5,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("snapshot has %d keys, want %d: %v", len(got), len(want), got)
	}
}

// TestConcurrentObserve hammers one histogram and counter from many
// goroutines while rendering — meaningful under -race, and checks totals.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "c")
	h := r.NewHistogram("conc_seconds", "h", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				if i%100 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
