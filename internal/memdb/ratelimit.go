package memdb

import (
	"fmt"
	"sync"
)

// RateLimitError simulates SkyServer's "Maximum 60 queries allowed per
// minute" error (quoted in Section 2.3).
type RateLimitError struct {
	PerMinute int
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("Maximum %d queries allowed per minute", e.PerMinute)
}

// RateLimiter enforces a per-user sliding-window query quota, mimicking the
// operational constraint that makes re-issuing the whole log against the
// live database impractical (Sections 1 and 6.6). Timestamps are logical
// seconds supplied by the caller so simulations stay deterministic.
type RateLimiter struct {
	PerMinute int

	mu      sync.Mutex
	history map[string][]int64
}

// NewRateLimiter returns a limiter allowing perMinute queries per user per
// 60 logical seconds.
func NewRateLimiter(perMinute int) *RateLimiter {
	return &RateLimiter{PerMinute: perMinute, history: make(map[string][]int64)}
}

// Allow records a query by user at logical time ts (seconds) and reports
// whether it is within quota. Denied queries are not recorded.
func (rl *RateLimiter) Allow(user string, ts int64) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	window := rl.history[user]
	// Evict entries older than 60 seconds.
	cut := 0
	for cut < len(window) && window[cut] <= ts-60 {
		cut++
	}
	window = window[cut:]
	if len(window) >= rl.PerMinute {
		rl.history[user] = window
		return false
	}
	rl.history[user] = append(window, ts)
	return true
}

// Check is Allow returning the SkyServer-style error on denial.
func (rl *RateLimiter) Check(user string, ts int64) error {
	if !rl.Allow(user, ts) {
		return &RateLimitError{PerMinute: rl.PerMinute}
	}
	return nil
}
