package interestcache

import (
	"testing"

	"repro/internal/interval"
)

// FuzzContainmentIndex drives the containment index with fuzz-derived region
// sets (boxes, categorical pins, mixed relation sets) and query shapes, and
// checks the indexed lookup against the brute-force oracle: scan every
// region, test containment directly, pick fewest rows then smallest ID. The
// index's grouping, primary-dimension pruning, and running-max skip must
// never change the answer.
func FuzzContainmentIndex(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0x80, 0x01, 0xff, 0x20, 0x33, 0x41, 0x00, 0x00, 0x17})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		// Quarter-step grid keeps endpoints exact and collisions frequent.
		val := func() float64 { return float64(next()%64) / 4 }
		ivl := func() interval.Interval {
			lo, hi := val(), val()
			if lo > hi {
				lo, hi = hi, lo
			}
			return interval.Interval{Lo: lo, Hi: hi, LoOpen: next()%4 == 0, HiOpen: next()%4 == 0}
		}
		relSets := [][]string{{"T"}, {"S"}, {"T", "S"}}
		dims := []string{"T.a", "T.b", "S.c"}
		catVals := []string{"x", "y", "z"}

		nRegions := int(next()%8) + 1
		var regions []*Region
		for id := 1; id <= nRegions; id++ {
			r := &Region{
				ID:        id,
				Relations: relSets[int(next())%len(relSets)],
				Box:       interval.NewBox(),
				Rows:      int(next() % 16),
			}
			for i := int(next() % 3); i > 0; i-- {
				r.Box.Set(dims[int(next())%len(dims)], ivl())
			}
			if next()%3 == 0 {
				n := int(next()%3) + 1
				r.Categorical = map[string][]string{"S.w": catVals[:n]}
			}
			regions = append(regions, r)
		}
		idx := buildIndex(regions)

		for q := int(next()%4) + 1; q > 0; q-- {
			shape := &queryShape{
				relations: relSets[int(next())%len(relSets)],
				bounds:    map[string]interval.Set{},
				strs:      map[string][]string{},
			}
			for i := int(next() % 3); i > 0; i-- {
				set := interval.NewSet(ivl())
				if next()%3 == 0 {
					set = set.Union(interval.NewSet(ivl()))
				}
				if set.IsEmpty() {
					// A query constraining a column to nothing has an empty
					// access area; lookupArea filters those before lookup.
					continue
				}
				shape.bounds[dims[int(next())%len(dims)]] = set
			}
			if next()%2 == 0 {
				n := int(next()%3) + 1
				shape.strs["S.w"] = catVals[:n]
			}

			var want *Region
			for _, r := range regions {
				if !r.containsShape(shape, "", "") {
					continue
				}
				if want == nil || r.Rows < want.Rows || (r.Rows == want.Rows && r.ID < want.ID) {
					want = r
				}
			}
			got := idx.lookup(shape)
			switch {
			case want == nil && got != nil:
				t.Fatalf("index found region %d, oracle none (shape=%+v)", got.ID, shape)
			case want != nil && got == nil:
				t.Fatalf("index found nothing, oracle region %d (shape=%+v)", want.ID, shape)
			case want != nil && got.ID != want.ID:
				t.Fatalf("index picked %d, oracle %d (shape=%+v)", got.ID, want.ID, shape)
			}
		}
	})
}
