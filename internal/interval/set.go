package interval

import (
	"math"
	"sort"
	"strings"
)

// Set is a union of disjoint, non-adjacent intervals kept sorted by lower
// bound. It represents the value set of a column constrained by an arbitrary
// Boolean combination of column-constant predicates; for example the
// predicate "a <> 5" is the set {(-Inf, 5), (5, +Inf)}.
//
// The zero value is the empty set. Sets are immutable: every operation
// returns a new Set.
type Set struct {
	ivs []Interval // invariant: sorted, non-empty, pairwise disjoint and non-adjacent
}

// NewSet builds a canonical Set from arbitrary intervals, merging overlaps
// and adjacency and dropping empties.
func NewSet(ivs ...Interval) Set {
	nonEmpty := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.IsEmpty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return Set{}
	}
	sort.Slice(nonEmpty, func(i, j int) bool {
		a, b := nonEmpty[i], nonEmpty[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		// Closed lower endpoint sorts before open at the same value.
		return !a.LoOpen && b.LoOpen
	})
	merged := []Interval{nonEmpty[0]}
	for _, iv := range nonEmpty[1:] {
		last := &merged[len(merged)-1]
		if u, ok := last.Union(iv); ok {
			*last = u
		} else {
			merged = append(merged, iv)
		}
	}
	return Set{ivs: merged}
}

// FullSet is the set covering (-Inf, +Inf).
func FullSet() Set { return NewSet(Full()) }

// EmptySet is the empty set.
func EmptySet() Set { return Set{} }

// NotEqual returns the set representing "a <> v".
func NotEqual(v float64) Set {
	return NewSet(Below(v, true), Above(v, true))
}

// Intervals returns the canonical constituent intervals (do not mutate).
func (s Set) Intervals() []Interval { return s.ivs }

// IsEmpty reports whether the set contains no point.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// IsFull reports whether the set is all of (-Inf, +Inf).
func (s Set) IsFull() bool {
	return len(s.ivs) == 1 && s.ivs[0].IsFull()
}

// Contains reports whether v is a member of the set.
func (s Set) Contains(v float64) bool {
	// Binary search for the first interval whose Hi >= v.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi >= v })
	if i == len(s.ivs) {
		return false
	}
	return s.ivs[i].Contains(v)
}

// Union returns the set union.
func (s Set) Union(other Set) Set {
	all := make([]Interval, 0, len(s.ivs)+len(other.ivs))
	all = append(all, s.ivs...)
	all = append(all, other.ivs...)
	return NewSet(all...)
}

// Intersect returns the set intersection.
func (s Set) Intersect(other Set) Set {
	var out []Interval
	for _, a := range s.ivs {
		for _, b := range other.ivs {
			if x := a.Intersect(b); !x.IsEmpty() {
				out = append(out, x)
			}
		}
	}
	return NewSet(out...)
}

// Complement returns (-Inf, +Inf) minus the set.
func (s Set) Complement() Set {
	if s.IsEmpty() {
		return FullSet()
	}
	var out []Interval
	cursorLo, cursorOpen := math.Inf(-1), true
	for _, iv := range s.ivs {
		gap := Interval{Lo: cursorLo, LoOpen: cursorOpen, Hi: iv.Lo, HiOpen: !iv.LoOpen}
		if !gap.IsEmpty() {
			out = append(out, gap)
		}
		cursorLo, cursorOpen = iv.Hi, !iv.HiOpen
	}
	tail := Interval{Lo: cursorLo, LoOpen: cursorOpen, Hi: math.Inf(1), HiOpen: true}
	if !tail.IsEmpty() {
		out = append(out, tail)
	}
	return NewSet(out...)
}

// Hull returns the smallest single interval containing the whole set.
func (s Set) Hull() Interval {
	if s.IsEmpty() {
		return Empty()
	}
	first, last := s.ivs[0], s.ivs[len(s.ivs)-1]
	return Interval{Lo: first.Lo, LoOpen: first.LoOpen, Hi: last.Hi, HiOpen: last.HiOpen}
}

// Width returns the total measure of the set.
func (s Set) Width() float64 {
	total := 0.0
	for _, iv := range s.ivs {
		total += iv.Width()
	}
	return total
}

// OverlapLen returns the measure of the intersection with other.
func (s Set) OverlapLen(other Set) float64 {
	return s.Intersect(other).Width()
}

// Clip intersects every constituent interval with clip.
func (s Set) Clip(clip Interval) Set {
	return s.Intersect(NewSet(clip))
}

// Equal reports whether the two sets denote the same point set.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if !s.ivs[i].Equal(other.ivs[i]) {
			return false
		}
	}
	return true
}

// String renders the set as a union of intervals, e.g. "(-inf, 5) ∪ (5, +inf)".
func (s Set) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}
