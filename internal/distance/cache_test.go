package distance

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// countingDist returns |i-j| scaled and counts raw invocations.
func countingDist(calls *atomic.Int64) func(i, j int) float64 {
	return func(i, j int) float64 {
		calls.Add(1)
		return math.Abs(float64(i)-float64(j)) * 0.5
	}
}

func TestPairCacheHitCounting(t *testing.T) {
	var calls atomic.Int64
	c := NewPairCache(10, countingDist(&calls))
	if !c.Memoizing() {
		t.Fatal("small cache must memoize")
	}
	if d := c.Dist(2, 7); d != 2.5 {
		t.Fatalf("dist = %v", d)
	}
	if d := c.Dist(7, 2); d != 2.5 {
		t.Fatalf("symmetric dist = %v", d)
	}
	if d := c.Dist(4, 4); d != 0 {
		t.Fatalf("self dist = %v", d)
	}
	if got := c.Evals(); got != 1 {
		t.Errorf("evals = %d, want 1", got)
	}
	if got := c.Hits(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("raw calls = %d, want 1", got)
	}
}

func TestPairCacheAllPairsOnce(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		build func(int, func(int, int) float64) *PairCache
	}{
		{"triangular", 17, newTriangularPairCache},
		{"sharded", 61, newShardedPairCache},
	} {
		n := tc.n
		var calls atomic.Int64
		c := tc.build(n, countingDist(&calls))
		for round := 0; round < 2; round++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := math.Abs(float64(i)-float64(j)) * 0.5
					if d := c.Dist(i, j); d != want {
						t.Fatalf("n=%d: dist(%d,%d) = %v, want %v", n, i, j, d, want)
					}
				}
			}
		}
		pairs := int64(n * (n - 1) / 2)
		if got := calls.Load(); got != pairs {
			t.Errorf("%s n=%d: raw calls = %d, want %d", tc.name, n, got, pairs)
		}
		if got := c.Evals(); got != pairs {
			t.Errorf("%s n=%d: evals = %d, want %d", tc.name, n, got, pairs)
		}
	}
}

func TestPairCacheConcurrent(t *testing.T) {
	// Exercised under -race by the make racecheck target: many goroutines
	// hammer overlapping pairs on both storage backends.
	for _, build := range []func(int, func(int, int) float64) *PairCache{
		newTriangularPairCache, newShardedPairCache,
	} {
		n := 100
		var calls atomic.Int64
		c := build(n, countingDist(&calls))
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					j := (i*7 + g) % n
					want := math.Abs(float64(i)-float64(j)) * 0.5
					if d := c.Dist(i, j); d != want {
						t.Errorf("dist(%d,%d) = %v, want %v", i, j, d, want)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if c.Evals()+c.Hits() < int64(8*n)-8 {
			t.Errorf("n=%d: evals %d + hits %d below lookup count", n, c.Evals(), c.Hits())
		}
	}
}

func TestPairCachePassthrough(t *testing.T) {
	var calls atomic.Int64
	c := NewPairCache(passthroughCutoff+1, countingDist(&calls))
	if c.Memoizing() {
		t.Fatal("cache above cutoff must not allocate pair storage")
	}
	c.Dist(1, 2)
	c.Dist(1, 2)
	if got := c.Evals(); got != 2 {
		t.Errorf("passthrough evals = %d, want 2", got)
	}
}
