package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/qlog"
)

// On-disk entry framing, shared by every segment:
//
//	u32 LE  payload length
//	u32 LE  CRC-32C (Castagnoli) of the payload
//	payload [1 byte kind][kind-specific body]
//
// Three entry kinds exist. Record entries carry one ingested query-log
// record plus its statement fingerprint (0 when the statement does not
// lex — the WAL's "parse failed" marker). Group entries are produced by
// compaction: one (user, sql) pair that occurred n times, with every
// occurrence's (seq, time) delta-coded so expansion is lossless. Footer
// entries close a sealed segment with its index — record span, time range
// and the sorted distinct fingerprints — followed by a fixed trailer
// locating the footer, so opening a sealed segment reads the index without
// scanning the data.
const (
	kindRecord = 1
	kindFooter = 2
	kindGroup  = 3

	// maxEntryBytes bounds a decoded payload: a corrupt length prefix must
	// not drive a giant allocation. Generous next to the ingest path's own
	// statement limits.
	maxEntryBytes = 32 << 20

	// entryHeader is the framing overhead per entry.
	entryHeader = 8
)

// footerMagic trails every sealed segment:
//
//	u32 LE  total footer entry length (header + payload)
//	8 byte  magic
//
// Reading the last 12 bytes of a sealed file locates the footer entry; its
// CRC then vouches for the index.
var footerMagic = [8]byte{'W', 'A', 'L', 'F', 'O', 'O', 'T', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports an entry whose frame or checksum does not verify.
// Recovery treats it as the end of the durable prefix; readers treat it as
// a truncated segment.
var ErrCorrupt = errors.New("wal: corrupt entry")

// record is the in-memory form of one WAL record entry.
type record struct {
	rec qlog.Record
	fp  uint64
}

// appendUvarint / appendVarint are binary.AppendUvarint spelled out so the
// encoder reads uniformly.
func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// encodeRecord appends one kindRecord payload (no framing) to b. The
// traffic class rides as an optional trailing field, emitted only when
// non-empty, so classless logs stay byte-identical to the original format
// and old segments decode with Class "".
func encodeRecord(b []byte, rec *qlog.Record, fp uint64) []byte {
	b = append(b, kindRecord)
	b = appendUvarint(b, uint64(rec.Seq))
	b = appendVarint(b, rec.Time)
	b = appendUvarint(b, fp)
	b = appendUvarint(b, uint64(len(rec.User)))
	b = append(b, rec.User...)
	b = appendUvarint(b, uint64(len(rec.SQL)))
	b = append(b, rec.SQL...)
	if rec.Class != "" {
		b = appendUvarint(b, uint64(len(rec.Class)))
		b = append(b, rec.Class...)
	}
	return b
}

// group is one compacted duplicate family: the same user issuing the same
// statement text n times under the same traffic class. seqs/times are
// parallel, in original log order.
type group struct {
	fp    uint64
	user  string
	sql   string
	class string
	seqs  []int
	times []int64
}

// encodeGroup appends one kindGroup payload (no framing) to b. Like record
// entries, the class is an optional trailing field emitted only when
// non-empty.
func encodeGroup(b []byte, g *group) []byte {
	b = append(b, kindGroup)
	b = appendUvarint(b, g.fp)
	b = appendUvarint(b, uint64(len(g.user)))
	b = append(b, g.user...)
	b = appendUvarint(b, uint64(len(g.sql)))
	b = append(b, g.sql...)
	b = appendUvarint(b, uint64(len(g.seqs)))
	prevSeq, prevT := int64(0), int64(0)
	for i := range g.seqs {
		b = appendVarint(b, int64(g.seqs[i])-prevSeq)
		b = appendVarint(b, g.times[i]-prevT)
		prevSeq, prevT = int64(g.seqs[i]), g.times[i]
	}
	if g.class != "" {
		b = appendUvarint(b, uint64(len(g.class)))
		b = append(b, g.class...)
	}
	return b
}

// footer is a sealed segment's inline index.
type footer struct {
	span    uint64 // logical record span (original count, pre-compaction)
	records uint64 // records physically present (expanded groups)
	minT    int64  // min record time (0 span: both zero)
	maxT    int64
	fps     []uint64 // sorted distinct fingerprints
}

// encodeFooter appends one kindFooter payload (no framing) to b.
func encodeFooter(b []byte, f *footer) []byte {
	b = append(b, kindFooter)
	b = appendUvarint(b, f.span)
	b = appendUvarint(b, f.records)
	b = appendVarint(b, f.minT)
	b = appendVarint(b, f.maxT)
	b = appendUvarint(b, uint64(len(f.fps)))
	prev := uint64(0)
	for _, fp := range f.fps {
		b = appendUvarint(b, fp-prev) // sorted ⇒ deltas fit small varints
		prev = fp
	}
	return b
}

// frame wraps a payload with its length + CRC header.
func frame(dst, payload []byte) []byte {
	var hdr [entryHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameInPlace fills the header of a buffer whose first entryHeader bytes
// were reserved and whose payload follows — the copy-free twin of frame.
func frameInPlace(buf []byte) []byte {
	payload := buf[entryHeader:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	return buf
}

// entryReader decodes framed entries from a stream, stopping cleanly at a
// torn tail: io.EOF means a clean end, ErrCorrupt a frame that does not
// verify (short header, short payload, oversized length, CRC mismatch).
type entryReader struct {
	r   *bufio.Reader
	buf []byte
	// off tracks consumed bytes so recovery can truncate at the last good
	// entry boundary.
	off int64
}

func newEntryReader(r io.Reader) *entryReader {
	return &entryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// next returns the next verified payload (valid until the following call).
// io.EOF at an entry boundary is a clean end; anything else that prevents a
// full verified read reports ErrCorrupt.
func (er *entryReader) next() ([]byte, error) {
	var hdr [entryHeader]byte
	n, err := io.ReadFull(er.r, hdr[:])
	if n == 0 && err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, ErrCorrupt
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	if ln == 0 || ln > maxEntryBytes {
		return nil, ErrCorrupt
	}
	if cap(er.buf) < int(ln) {
		er.buf = make([]byte, ln)
	}
	payload := er.buf[:ln]
	if _, err := io.ReadFull(er.r, payload); err != nil {
		return nil, ErrCorrupt
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrCorrupt
	}
	er.off += int64(entryHeader) + int64(ln)
	return payload, nil
}

// uvarint / varint helpers over a payload slice.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, ErrCorrupt
	}
	return v, b[n:], nil
}

func readBytes(b []byte) (string, []byte, error) {
	ln, b, err := readUvarint(b)
	if err != nil || ln > uint64(len(b)) {
		return "", nil, ErrCorrupt
	}
	return string(b[:ln]), b[ln:], nil
}

// decodeRecord parses a kindRecord payload (kind byte already consumed).
func decodeRecord(b []byte) (record, error) {
	var r record
	seq, b, err := readUvarint(b)
	if err != nil {
		return r, err
	}
	t, b, err := readVarint(b)
	if err != nil {
		return r, err
	}
	fp, b, err := readUvarint(b)
	if err != nil {
		return r, err
	}
	user, b, err := readBytes(b)
	if err != nil {
		return r, err
	}
	sql, b, err := readBytes(b)
	if err != nil {
		return r, err
	}
	var class string
	if len(b) != 0 {
		if class, b, err = readBytes(b); err != nil {
			return r, err
		}
	}
	if len(b) != 0 {
		return r, ErrCorrupt
	}
	r.rec = qlog.Record{Seq: int(seq), Time: t, User: user, SQL: sql, Class: class}
	r.fp = fp
	return r, nil
}

// decodeGroup parses a kindGroup payload (kind byte already consumed).
func decodeGroup(b []byte) (group, error) {
	var g group
	var err error
	if g.fp, b, err = readUvarint(b); err != nil {
		return g, err
	}
	if g.user, b, err = readBytes(b); err != nil {
		return g, err
	}
	if g.sql, b, err = readBytes(b); err != nil {
		return g, err
	}
	n, b, err := readUvarint(b)
	if err != nil || n == 0 || n > maxEntryBytes {
		return g, ErrCorrupt
	}
	g.seqs = make([]int, 0, n)
	g.times = make([]int64, 0, n)
	prevSeq, prevT := int64(0), int64(0)
	for i := uint64(0); i < n; i++ {
		var dSeq, dT int64
		if dSeq, b, err = readVarint(b); err != nil {
			return g, err
		}
		if dT, b, err = readVarint(b); err != nil {
			return g, err
		}
		prevSeq += dSeq
		prevT += dT
		g.seqs = append(g.seqs, int(prevSeq))
		g.times = append(g.times, prevT)
	}
	if len(b) != 0 {
		if g.class, b, err = readBytes(b); err != nil {
			return g, err
		}
	}
	if len(b) != 0 {
		return g, ErrCorrupt
	}
	return g, nil
}

// decodeFooter parses a kindFooter payload (kind byte already consumed).
func decodeFooter(b []byte) (footer, error) {
	var f footer
	var err error
	if f.span, b, err = readUvarint(b); err != nil {
		return f, err
	}
	if f.records, b, err = readUvarint(b); err != nil {
		return f, err
	}
	if f.minT, b, err = readVarint(b); err != nil {
		return f, err
	}
	if f.maxT, b, err = readVarint(b); err != nil {
		return f, err
	}
	n, b, err := readUvarint(b)
	if err != nil || n > maxEntryBytes/8 {
		return f, ErrCorrupt
	}
	f.fps = make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var d uint64
		if d, b, err = readUvarint(b); err != nil {
			return f, err
		}
		prev += d
		f.fps = append(f.fps, prev)
	}
	if len(b) != 0 {
		return f, ErrCorrupt
	}
	if !sort.SliceIsSorted(f.fps, func(i, j int) bool { return f.fps[i] < f.fps[j] }) {
		return f, ErrCorrupt
	}
	return f, nil
}

// scanResult is what a full segment scan learns.
type scanResult struct {
	span uint64 // logical records (groups expanded; compaction-dropped
	// records are NOT recoverable from a scan, so for compacted segments the
	// footer's span is authoritative)
	records   uint64
	minT      int64
	maxT      int64
	fps       map[uint64]struct{}
	footer    *footer
	goodOff   int64 // file offset just past the last verified entry
	truncated bool  // hit a torn/corrupt tail before EOF
}

// scanSegment walks every entry of one segment stream, invoking onRecord
// for each logical record (group entries are expanded in stored order).
// A torn or corrupt tail ends the scan without error — the result reports
// truncated=true and where the verified prefix ends. onRecord may be nil.
func scanSegment(r io.Reader, onRecord func(rec qlog.Record, fp uint64) error) (*scanResult, error) {
	er := newEntryReader(r)
	res := &scanResult{fps: make(map[uint64]struct{})}
	seeTime := func(t int64) {
		if res.records == 0 {
			res.minT, res.maxT = t, t
			return
		}
		if t < res.minT {
			res.minT = t
		}
		if t > res.maxT {
			res.maxT = t
		}
	}
	for {
		payload, err := er.next()
		if err == io.EOF {
			res.goodOff = er.off
			return res, nil
		}
		if err != nil {
			res.goodOff = er.off
			res.truncated = true
			return res, nil
		}
		switch payload[0] {
		case kindRecord:
			rec, derr := decodeRecord(payload[1:])
			if derr != nil {
				res.goodOff = er.off - int64(entryHeader) - int64(len(payload))
				res.truncated = true
				return res, nil
			}
			seeTime(rec.rec.Time)
			res.records++
			res.span++
			res.fps[rec.fp] = struct{}{}
			if onRecord != nil {
				if cerr := onRecord(rec.rec, rec.fp); cerr != nil {
					return res, cerr
				}
			}
		case kindGroup:
			g, derr := decodeGroup(payload[1:])
			if derr != nil {
				res.goodOff = er.off - int64(entryHeader) - int64(len(payload))
				res.truncated = true
				return res, nil
			}
			res.fps[g.fp] = struct{}{}
			for i := range g.seqs {
				seeTime(g.times[i])
				res.records++
				res.span++
				if onRecord != nil {
					rec := qlog.Record{Seq: g.seqs[i], Time: g.times[i], User: g.user, SQL: g.sql, Class: g.class}
					if cerr := onRecord(rec, g.fp); cerr != nil {
						return res, cerr
					}
				}
			}
		case kindFooter:
			f, derr := decodeFooter(payload[1:])
			if derr != nil {
				res.goodOff = er.off - int64(entryHeader) - int64(len(payload))
				res.truncated = true
				return res, nil
			}
			res.footer = &f
		default:
			// Unknown kind: a future format or corruption that happened to
			// checksum — stop here, keeping the verified prefix.
			res.goodOff = er.off - int64(entryHeader) - int64(len(payload))
			res.truncated = true
			return res, nil
		}
	}
}

// segmentFileName renders the canonical segment name for a base offset.
func segmentFileName(base uint64) string {
	return fmt.Sprintf("wal-%016x.seg", base)
}

// parseSegmentName extracts the base offset from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	var base uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.seg", &base); err != nil {
		return 0, false
	}
	return base, len(name) == len("wal-0123456789abcdef.seg")
}
