package wal

import "repro/internal/obs"

// Stage spans and counters for the WAL, registered on the default obs
// registry (idempotent, shared with the serving layer's /metrics).
var (
	appendStage  = obs.NewStage("wal_append")
	fsyncStage   = obs.NewStage("wal_fsync")
	replayStage  = obs.NewStage("wal_replay")
	compactStage = obs.NewStage("wal_compact")

	appendTotal     = obs.NewCounter("wal_appends_total", "records appended to the WAL")
	fsyncTotal      = obs.NewCounter("wal_fsyncs_total", "fsync calls issued by the WAL writer")
	replayTotal     = obs.NewCounter("wal_replayed_total", "records replayed from the WAL on recovery")
	replayTruncated = obs.NewCounter("wal_torn_tails_total", "torn tails truncated during WAL recovery")
	segmentsSealed  = obs.NewCounter("wal_segments_sealed_total", "segments sealed by rotation")
	segmentsSkipped = obs.NewCounter("wal_segments_skipped_total", "segments skipped by the index during windowed reads")
	compactionsRun  = obs.NewCounter("wal_compactions_total", "cold segments compacted")
	compactDropped  = obs.NewCounter("wal_compact_dropped_total", "parse-failed records dropped by compaction")
	compactDeduped  = obs.NewCounter("wal_compact_deduped_total", "duplicate records collapsed into groups by compaction")
)
