package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/qlog"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/wal"
)

// WALPerfResult is the outcome of the durability experiment (E16): the same
// workload ingested with and without the segmented WAL to price the
// group-commit fsync barrier, the raw replay rate of the resulting log, and
// the windowed re-mine read path with and without the segment index.
// cmd/benchreport serialises it to BENCH_wal.json; the identical_* flags are
// the determinism gates (benchcmp fails a true->false flip), while the
// wall-clock rates record the trajectory without gating CI.
type WALPerfResult struct {
	Queries int   `json:"queries"`
	Seed    int64 `json:"seed"`

	// Ingest cost: concurrent burst clients sharing the group-commit
	// barrier, WAL off vs on. Interference on a shared box is strictly
	// additive — background work only ever slows a run — so the fastest
	// off run and the fastest on run over the paired rounds are the
	// cleanest estimate of each side's intrinsic cost, and their ratio is
	// the recorded overhead.
	IngestOffRPS    float64 `json:"ingest_wal_off_records_per_sec"`
	IngestOnRPS     float64 `json:"ingest_wal_on_records_per_sec"`
	WALOverheadFrac float64 `json:"wal_ingest_overhead_frac"`
	// IdenticalReportWALOnOff: logging must be invisible to mining — the
	// flushed report with the WAL on equals the report with it off
	// (sequential ingests: admission order is part of the contract).
	IdenticalReportWALOnOff bool `json:"identical_report_wal_on_off"`

	// Restart: a server rebuilt on the bare log (no snapshot) replays every
	// record and serves the identical report.
	IdenticalReportAfterReplay bool    `json:"identical_report_after_replay"`
	RestartSeconds             float64 `json:"restart_replay_seconds"`

	// Raw replay rate of the log (decode + stream, no mining).
	ReplayRecords int     `json:"replay_records"`
	ReplayRPS     float64 `json:"replay_records_per_sec"`

	// Windowed read: the middle eighth of the record-time range through the
	// segment index vs the scan-everything baseline.
	SegmentsTotal         int     `json:"segments_total"`
	WindowRecords         int     `json:"window_records"`
	WindowSegScanned      int     `json:"window_segments_scanned"`
	WindowSegSkipped      int     `json:"window_segments_skipped"`
	WindowIndexedSeconds  float64 `json:"window_indexed_seconds"`
	WindowScanAllSeconds  float64 `json:"window_scan_all_seconds"`
	WindowIndexedSpeedupX float64 `json:"remine_indexed_speedup_x"`
	// IdenticalRemineWindow: the index is an optimisation, not a filter —
	// both read paths must yield exactly the same records.
	IdenticalRemineWindow bool `json:"identical_remine_window"`

	Report string `json:"-"`
}

// walPerfBursts pushes the records into the server from walClients concurrent
// clients (contiguous slices, bursts within each) and returns the sustained
// admission rate. Concurrency is the point: group commit coalesces the
// clients' durability barriers into shared fsyncs, so the measured overhead
// reflects the amortised cost rather than one client serially paying every
// fsync on a device with variable sync latency.
const (
	walClients = 4
	// walPerfRounds timed off/on pairs are run; each side's fastest round is
	// recorded (interference is additive, so the minimum estimates intrinsic
	// cost). The untimed sequential phase doubles as warmup. Rounds alternate
	// which side runs first (ABBA) so within-round machine drift cannot
	// systematically favour one side.
	walPerfRounds = 9
)

func walPerfBursts(srv *serve.Server, recs []qlog.Record) (float64, error) {
	const burst = 1024
	var wg sync.WaitGroup
	errs := make([]error, walClients)
	per := (len(recs) + walClients - 1) / walClients
	t0 := time.Now()
	for c := 0; c < walClients; c++ {
		lo, hi := c*per, (c+1)*per
		if hi > len(recs) {
			hi = len(recs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c int, slice []qlog.Record) {
			defer wg.Done()
			for lo := 0; lo < len(slice); lo += burst {
				hi := lo + burst
				if hi > len(slice) {
					hi = len(slice)
				}
				chunk := slice[lo:hi]
				for len(chunk) > 0 {
					n, ierr := srv.IngestRecords(chunk)
					if ierr == serve.ErrClosed {
						errs[c] = ierr
						return
					}
					chunk = chunk[n:]
					if len(chunk) == 0 {
						break
					}
					// A coarse retry cadence on any partial accept: immediate
					// retries chop the stream into sliver-sized calls — each
					// paying a durability barrier for a few dozen records —
					// while a backpressured queue drains at a fixed rate
					// anyway, so waiting for real room costs no throughput.
					time.Sleep(8 * time.Millisecond)
				}
			}
		}(c, recs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(len(recs)) / time.Since(t0).Seconds(), nil
}

// walPerfSequential pushes the records from one client in bursts — the
// deterministic admission order used for the report-identity gates, since
// concurrent admission interleaves the stream and the reports are only
// byte-reproducible for identical streams.
func walPerfSequential(srv *serve.Server, recs []qlog.Record) error {
	const burst = 256
	for lo := 0; lo < len(recs); lo += burst {
		hi := lo + burst
		if hi > len(recs) {
			hi = len(recs)
		}
		chunk := recs[lo:hi]
		for len(chunk) > 0 {
			n, ierr := srv.IngestRecords(chunk)
			if n > 0 {
				chunk = chunk[n:]
				continue
			}
			if ierr == serve.ErrClosed {
				return ierr
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return nil
}

// walPerfReport ingests sequentially into a fresh server and returns the
// flushed JSON report bytes.
func (e *Env) walPerfReport(cfg serve.Config, recs []qlog.Record) ([]byte, error) {
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := walPerfSequential(srv, recs); err != nil {
		srv.Close()
		return nil, err
	}
	srv.Flush()
	res, _ := srv.Latest()
	var buf bytes.Buffer
	if err := report.Write(&buf, res, report.JSON, report.Options{Coverage: cfg.Coverage != nil}); err != nil {
		srv.Close()
		return nil, err
	}
	return buf.Bytes(), srv.Close()
}

// RunWALPerf executes E16. Record times are rewritten to the monotonic clock
// loggen -step emits, so time-windowed segment rotation and the windowed
// read have real spans to work with.
func (e *Env) RunWALPerf() *WALPerfResult {
	out := &WALPerfResult{Queries: e.Scale, Seed: e.Seed}
	fail := func(err error) *WALPerfResult {
		out.Report = fmt.Sprintf("E16 walperf: %v\n", err)
		return out
	}

	recs := make([]qlog.Record, len(e.Records))
	copy(recs, e.Records)
	for i := range recs {
		recs[i].Time = int64(i) * 4
	}

	dir, err := os.MkdirTemp("", "walperf-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(dir)
	walDir := filepath.Join(dir, "wal")
	// Rotate roughly every sixteenth of the record-time span so the windowed
	// read has segments to skip at any -scale.
	window := (recs[len(recs)-1].Time + 1) / 16
	// A queue deep enough that mining rides through the clients' group-commit
	// stalls (applied to both runs — the baseline must be provisioned alike).
	baseCfg := func() serve.Config {
		cfg := e.serveConfig("")
		cfg.QueueSize = 4096
		return cfg
	}
	walOpts := func(cfg serve.Config) serve.Config {
		cfg.WALDir = walDir
		cfg.WALSegmentWindow = window
		return cfg
	}

	// Determinism gates: sequential ingests, flushed reports compared.
	// The WAL-on run also leaves walDir behind for the restart, replay-rate
	// and windowed-read phases (sequential admission keeps its segments
	// time-contiguous).
	offReport, err := e.walPerfReport(baseCfg(), recs)
	if err != nil {
		return fail(fmt.Errorf("WAL-off ingest: %w", err))
	}
	onReport, err := e.walPerfReport(walOpts(baseCfg()), recs)
	if err != nil {
		return fail(fmt.Errorf("WAL-on ingest: %w", err))
	}
	out.IdenticalReportWALOnOff = bytes.Equal(offReport, onReport)

	// Ingest cost: timed concurrent runs, walPerfRounds adjacent off/on
	// pairs. The servers are aborted, not flushed — only admission is being
	// priced.
	timedRun := func(i int, on bool) (float64, error) {
		cfg := baseCfg()
		// Epoch reclustering is disabled for the timed pairs (it is priced by
		// its own experiments): recluster pauses make client completion time
		// bimodal — whether the final burst lands just before or just after a
		// recluster swings elapsed by a full recluster — which buries the
		// WAL delta in phase noise. Extraction still backpressures admission
		// through the queue, so the denominator is the real pipeline rate.
		cfg.EpochAreas = 1 << 30
		runDir := ""
		if on {
			runDir = filepath.Join(dir, fmt.Sprintf("walrun-%d", i))
			cfg.WALDir = runDir
			cfg.WALSegmentWindow = window
		}
		srv, err := serve.NewServer(cfg)
		if err != nil {
			return 0, err
		}
		rps, err := walPerfBursts(srv, recs)
		srv.Abort()
		if runDir != "" {
			os.RemoveAll(runDir)
		}
		if err != nil {
			return 0, fmt.Errorf("timed ingest (wal=%v): %w", on, err)
		}
		return rps, nil
	}
	var bestOff, bestOn float64
	for i := 0; i < walPerfRounds; i++ {
		// ABBA: odd rounds run the WAL side first.
		first := i%2 == 1
		onRPS, err := 0.0, error(nil)
		offRPS := 0.0
		if first {
			onRPS, err = timedRun(i, true)
			if err == nil {
				offRPS, err = timedRun(i, false)
			}
		} else {
			offRPS, err = timedRun(i, false)
			if err == nil {
				onRPS, err = timedRun(i, true)
			}
		}
		if err != nil {
			return fail(err)
		}
		if offRPS > bestOff {
			bestOff = offRPS
		}
		if onRPS > bestOn {
			bestOn = onRPS
		}
	}
	out.IngestOffRPS, out.IngestOnRPS = bestOff, bestOn
	out.WALOverheadFrac = (bestOff - bestOn) / bestOff

	// Restart on the bare log: no snapshot was ever written, so NewServer
	// replays every record before serving.
	t0 := time.Now()
	srv2, err := serve.NewServer(walOpts(baseCfg()))
	if err != nil {
		return fail(fmt.Errorf("restart on WAL: %w", err))
	}
	out.RestartSeconds = time.Since(t0).Seconds()
	srv2.Flush()
	res2, _ := srv2.Latest()
	var replayed bytes.Buffer
	_ = report.Write(&replayed, res2, report.JSON, report.Options{Coverage: true})
	out.IdenticalReportAfterReplay = bytes.Equal(replayed.Bytes(), onReport)
	if err := srv2.Close(); err != nil {
		return fail(err)
	}

	// Raw replay rate and the windowed read paths, straight on the
	// sequentially-written log.
	w, err := wal.Open(walDir, wal.Options{SegmentWindow: window})
	if err != nil {
		return fail(fmt.Errorf("reopening WAL: %w", err))
	}
	defer w.Close()
	out.SegmentsTotal = len(w.Segments())
	t0 = time.Now()
	n := 0
	if err := w.Replay(0, func(rec qlog.Record) error { n++; return nil }); err != nil {
		return fail(fmt.Errorf("replay: %w", err))
	}
	out.ReplayRecords = n
	if el := time.Since(t0).Seconds(); el > 0 {
		out.ReplayRPS = float64(n) / el
	}

	from := recs[len(recs)/2].Time
	to := recs[len(recs)*5/8].Time
	key := func(r qlog.Record) string { return fmt.Sprintf("%d|%d|%s", r.Seq, r.Time, r.SQL) }
	var indexed []string
	t0 = time.Now()
	ist, err := w.ReadWindow(from, to, nil, func(rec qlog.Record, fp uint64) error {
		indexed = append(indexed, key(rec))
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("indexed window read: %w", err))
	}
	out.WindowIndexedSeconds = time.Since(t0).Seconds()
	var scanned []string
	t0 = time.Now()
	_, err = w.ReadWindowScanAll(from, to, nil, func(rec qlog.Record, fp uint64) error {
		scanned = append(scanned, key(rec))
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("scan-all window read: %w", err))
	}
	out.WindowScanAllSeconds = time.Since(t0).Seconds()
	out.WindowRecords = ist.Records
	out.WindowSegScanned = ist.SegmentsScanned
	out.WindowSegSkipped = ist.SegmentsSkipped
	if out.WindowIndexedSeconds > 0 {
		out.WindowIndexedSpeedupX = out.WindowScanAllSeconds / out.WindowIndexedSeconds
	}
	out.IdenticalRemineWindow = len(indexed) == len(scanned)
	if out.IdenticalRemineWindow {
		for i := range indexed {
			if indexed[i] != scanned[i] {
				out.IdenticalRemineWindow = false
				break
			}
		}
	}

	out.Report = out.render()
	return out
}

func (r *WALPerfResult) render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E16 walperf — durable ingest WAL and windowed re-mining (%d queries)\n\n", r.Queries)
	fmt.Fprintf(&b, "ingest (%d clients, fastest of %d paired rounds): %.0f rec/s without WAL, %.0f rec/s with WAL + group-commit fsync (overhead %.1f%%, bound 15%%)\n",
		walClients, walPerfRounds, r.IngestOffRPS, r.IngestOnRPS, 100*r.WALOverheadFrac)
	fmt.Fprintf(&b, "report with WAL identical to without:  %v\n", r.IdenticalReportWALOnOff)
	fmt.Fprintf(&b, "restart on bare log: replayed in %.2fs (raw decode rate %.0f rec/s over %d records), report identical: %v\n",
		r.RestartSeconds, r.ReplayRPS, r.ReplayRecords, r.IdenticalReportAfterReplay)
	fmt.Fprintf(&b, "windowed read (middle eighth of the time range, %d of %d segments skipped): %d records in %.4fs indexed vs %.4fs scanning all (%.1fx), identical record stream: %v\n",
		r.WindowSegSkipped, r.SegmentsTotal, r.WindowRecords, r.WindowIndexedSeconds, r.WindowScanAllSeconds, r.WindowIndexedSpeedupX, r.IdenticalRemineWindow)
	return b.String()
}
