package distance

import (
	"math/rand"
	"testing"

	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
	"repro/internal/schema"
)

// randProfileArea builds a randomized access area mixing numeric ranges,
// string equality/inequality, joins and cross-column structure, including
// columns the stats registry has never seen (exercising the per-predicate
// fallback that used to make the literal mode asymmetric).
func randProfileArea(r *rand.Rand) *extract.AccessArea {
	numCols := []string{"T.a", "T.b", "T.u", "X.q"} // X.q is unseeded
	strCols := []string{"S.class", "X.tag"}         // X.tag is unseeded
	tables := [][]string{{"T"}, {"S"}, {"T", "S"}, nil}[r.Intn(4)]
	nClauses := r.Intn(4)
	cnf := make(predicate.CNF, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		nPreds := r.Intn(3) + 1
		cl := make(predicate.Clause, 0, nPreds)
		for j := 0; j < nPreds; j++ {
			switch r.Intn(4) {
			case 0:
				cl = append(cl, predicate.CC(strCols[r.Intn(len(strCols))],
					[]predicate.Op{predicate.Eq, predicate.Ne}[r.Intn(2)],
					predicate.Str([]string{"STAR", "GALAXY", "QSO"}[r.Intn(3)])))
			case 1:
				cl = append(cl, predicate.Cols(numCols[r.Intn(len(numCols))],
					predicate.Op(r.Intn(6)), numCols[r.Intn(len(numCols))]))
			default:
				cl = append(cl, cc(numCols[r.Intn(len(numCols))],
					predicate.Op(r.Intn(6)), float64(r.Intn(10))))
			}
		}
		cnf = append(cnf, cl)
	}
	return area(tables, cnf)
}

func kernelStats() *schema.Stats {
	st := schema.NewStats()
	st.SeedNumericContent("T.a", interval.Closed(0, 5))
	st.SeedNumericContent("T.b", interval.Closed(0, 5))
	st.SeedNumericContent("T.u", interval.Closed(0, 100))
	st.SeedCategorical("S.class", []string{"STAR", "GALAXY", "QSO", "UNKNOWN"})
	return st
}

// TestKernelMatchesProfileDistance is the bit-identity gate: over randomized
// areas, Kernel.Distance must equal Metric.ProfileDistance exactly (no
// epsilon) for every pair, in both modes.
func TestKernelMatchesProfileDistance(t *testing.T) {
	for _, mode := range []Mode{ModeEndpoint, ModePaperLiteral} {
		m := &Metric{Mode: mode, Stats: kernelStats()}
		kern := NewKernel(mode)
		r := rand.New(rand.NewSource(7))
		const n = 60
		profiles := make([]*Profile, n)
		for i := 0; i < n; i++ {
			var a *extract.AccessArea
			if i > 0 && r.Intn(5) == 0 {
				a = profiles[r.Intn(i)].Area // duplicate content: early-exit path
			} else {
				a = randProfileArea(r)
			}
			profiles[i] = m.Profile(a)
			if idx := kern.Add(profiles[i]); idx != i {
				t.Fatalf("mode %v: Add returned %d, want %d", mode, idx, i)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := m.ProfileDistance(profiles[i], profiles[j])
				got := kern.Distance(i, j)
				if got != want {
					t.Fatalf("mode %v: kernel d(%d,%d) = %v, pointer = %v\n a=%s\n b=%s",
						mode, i, j, got, want, profiles[i].Area, profiles[j].Area)
				}
			}
		}
	}
}

// TestPropSymmetryIdentityBothModes asserts d(p,q) == d(q,p) exactly and
// d(p,p) == 0 for BOTH modes over randomized profiles — the contract
// dbscan.Cluster documents for its distance function. Before the
// symmetrization fix the literal mode violated both.
func TestPropSymmetryIdentityBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeEndpoint, ModePaperLiteral} {
		m := &Metric{Mode: mode, Stats: kernelStats()}
		kern := NewKernel(mode)
		r := rand.New(rand.NewSource(11))
		const n = 80
		profiles := make([]*Profile, n)
		for i := 0; i < n; i++ {
			profiles[i] = m.Profile(randProfileArea(r))
			kern.Add(profiles[i])
		}
		for i := 0; i < n; i++ {
			if d := m.ProfileDistance(profiles[i], profiles[i]); d != 0 {
				t.Fatalf("mode %v: pointer d(p,p) = %v for %s", mode, d, profiles[i].Area)
			}
			if d := kern.Distance(i, i); d != 0 {
				t.Fatalf("mode %v: kernel d(p,p) = %v for %s", mode, d, profiles[i].Area)
			}
		}
		for trial := 0; trial < 2000; trial++ {
			i, j := r.Intn(n), r.Intn(n)
			dij := m.ProfileDistance(profiles[i], profiles[j])
			dji := m.ProfileDistance(profiles[j], profiles[i])
			if dij != dji {
				t.Fatalf("mode %v: pointer asymmetry d(%d,%d)=%v d(%d,%d)=%v\n a=%s\n b=%s",
					mode, i, j, dij, j, i, dji, profiles[i].Area, profiles[j].Area)
			}
			if kij, kji := kern.Distance(i, j), kern.Distance(j, i); kij != kji {
				t.Fatalf("mode %v: kernel asymmetry %v vs %v", mode, kij, kji)
			}
		}
	}
}

// TestKernelZeroAllocPerPair guards the SoA kernel's no-per-pair-allocation
// property.
func TestKernelZeroAllocPerPair(t *testing.T) {
	m := &Metric{Stats: kernelStats()}
	kern := NewKernel(ModeEndpoint)
	r := rand.New(rand.NewSource(3))
	const n = 32
	for i := 0; i < n; i++ {
		kern.Add(m.Profile(randProfileArea(r)))
	}
	i, j := 0, 1
	sink := 0.0
	allocs := testing.AllocsPerRun(200, func() {
		sink += kern.Distance(i, j)
		i = (i + 1) % n
		j = (j + 3) % n
	})
	if allocs != 0 {
		t.Errorf("Distance allocates %v per pair, want 0", allocs)
	}
	_ = sink
}

// TestKernelEarlyExit checks that structurally identical constraint lists
// take the early exit and still score exact 0.
func TestKernelEarlyExit(t *testing.T) {
	m := &Metric{Stats: kernelStats()}
	kern := NewKernel(ModeEndpoint)
	a := area([]string{"T"}, predicate.CNF{
		{cc("T.a", predicate.Lt, 3)},
		{cc("T.b", predicate.Gt, 1), cc("T.u", predicate.Eq, 7)},
	})
	b := area([]string{"T", "S"}, predicate.CNF{
		{cc("T.a", predicate.Lt, 3)},
		{cc("T.b", predicate.Gt, 1), cc("T.u", predicate.Eq, 7)},
	})
	kern.Add(m.Profile(a))
	kern.Add(m.Profile(b)) // same constraints, different tables
	before := KernelEarlyExits()
	if d := kern.Distance(0, 1); d != m.Distance(a, b) {
		t.Errorf("early-exit pair d = %v, pointer = %v", d, m.Distance(a, b))
	}
	if KernelEarlyExits() != before+1 {
		t.Errorf("early exits = %d, want %d", KernelEarlyExits(), before+1)
	}
}

// TestKernelAppendStable asserts appending more areas leaves earlier pair
// distances untouched (the incremental miner appends across epochs).
func TestKernelAppendStable(t *testing.T) {
	m := &Metric{Stats: kernelStats()}
	kern := NewKernel(ModeEndpoint)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		kern.Add(m.Profile(randProfileArea(r)))
	}
	d01, d57 := kern.Distance(0, 1), kern.Distance(5, 7)
	for i := 0; i < 20; i++ {
		kern.Add(m.Profile(randProfileArea(r)))
	}
	if kern.Distance(0, 1) != d01 || kern.Distance(5, 7) != d57 {
		t.Error("appending areas changed existing pair distances")
	}
	if kern.N() != 40 {
		t.Errorf("N = %d, want 40", kern.N())
	}
}
