package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/distance"
	"repro/internal/extract"
	"repro/internal/interval"
	"repro/internal/predicate"
	"repro/internal/schema"
)

// KernelPerfRun is one distance backend's timing over the fixed pair
// schedule. ElapsedMS and EvalsPerSec are wall-clock (ignored by the
// bench-drift gate); the eval count lives on the enclosing scale record.
type KernelPerfRun struct {
	Backend     string  `json:"backend"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// KernelPerfScale compares the pointer-walking ProfileDistance loop with
// the flat SoA kernel at one area count, over an identical seeded pair
// schedule. DistanceEvals, EarlyExits and EarlyExitRatio are deterministic
// replays (gated by benchreport -compare); IdenticalDistances asserts the
// two backends summed bit-identical values.
type KernelPerfScale struct {
	Areas              int           `json:"areas"`
	DistanceEvals      int64         `json:"distance_evals"`
	Pointer            KernelPerfRun `json:"before_pointer_profiles"`
	Flat               KernelPerfRun `json:"after_flat_kernel"`
	SpeedupX           float64       `json:"speedup_x"`
	EarlyExits         int64         `json:"early_exits"`
	EarlyExitRatio     float64       `json:"early_exit_ratio"`
	IdenticalDistances bool          `json:"identical_distances"`
}

// KernelPerfResult is the outcome of the kernelperf experiment across its
// area scales. Queries carries the total synthetic area count so the
// bench-drift scale gate only compares records built at the same sizes.
type KernelPerfResult struct {
	Queries     int                `json:"queries"`
	Seed        int64              `json:"seed"`
	Scales      []*KernelPerfScale `json:"scales"`
	MinSpeedupX float64            `json:"min_speedup_x"`
	Report      string             `json:"-"`
}

// synthAreaPool generates n deterministic synthetic access areas shaped
// like the SkyServer workload: constraint lists drawn from a shared
// template pool with grid-snapped constants (so structurally identical
// lists recur across areas, exercising the kernel's early exit the way
// templated real logs do), attached to varying relation sets. The returned
// stats registry seeds access(a) for every column used.
func synthAreaPool(n int, seed int64) ([]*extract.AccessArea, *schema.Stats) {
	stats := schema.NewStats()
	type numCol struct {
		name   string
		lo, hi float64
	}
	numCols := []numCol{
		{"PhotoObjAll.ra", 0, 360},
		{"PhotoObjAll.dec", -90, 90},
		{"Photoz.z", 0, 7},
		{"SpecObjAll.mjd", 50000, 58000},
		{"SpecObjAll.plate", 0, 12000},
		{"galSpecLine.sigma_balmer", 0, 500},
	}
	for _, c := range numCols {
		stats.SeedNumericContent(c.name, interval.Closed(c.lo, c.hi))
	}
	classes := []string{"STAR", "GALAXY", "QSO", "UNKNOWN"}
	stats.SeedCategorical("SpecObjAll.class", classes)

	tableSets := [][]string{
		{"PhotoObjAll"},
		{"SpecObjAll"},
		{"Photoz"},
		{"PhotoObjAll", "SpecObjAll"},
		{"Photoz", "PhotoObjAll"},
		{"galSpecLine", "SpecObjAll"},
	}

	r := rand.New(rand.NewSource(seed))
	poolSize := n / 16
	if poolSize < 4 {
		poolSize = 4
	}
	// Constants snap to a coarse per-column grid: distinct templates often
	// share exact bounds, like real logs where a UI emits the same ranges.
	const grid = 40
	randPred := func() predicate.Pred {
		switch r.Intn(10) {
		case 0: // join
			a := numCols[r.Intn(len(numCols))].name
			b := numCols[r.Intn(len(numCols))].name
			return predicate.Cols(a, predicate.Eq, b)
		case 1, 2: // categorical
			op := predicate.Eq
			if r.Intn(4) == 0 {
				op = predicate.Ne
			}
			return predicate.CC("SpecObjAll.class", op, predicate.Str(classes[r.Intn(len(classes))]))
		default: // numeric half-range on a grid point
			c := numCols[r.Intn(len(numCols))]
			v := c.lo + (c.hi-c.lo)*float64(r.Intn(grid+1))/grid
			ops := []predicate.Op{predicate.Lt, predicate.Le, predicate.Gt, predicate.Ge, predicate.Eq}
			return predicate.CC(c.name, ops[r.Intn(len(ops))], predicate.Number(v))
		}
	}
	// SkyServer templates carry several range constraints per query (the
	// paper caps CNF conversion at 35 atomic predicates); 2-5 clauses of 1-4
	// predicates matches the mined-area shapes the clusterperf workload
	// produces.
	pool := make([]predicate.CNF, poolSize)
	for i := range pool {
		nClauses := 2 + r.Intn(4)
		cnf := make(predicate.CNF, 0, nClauses)
		for c := 0; c < nClauses; c++ {
			nPreds := 1 + r.Intn(4)
			cl := make(predicate.Clause, 0, nPreds)
			for p := 0; p < nPreds; p++ {
				cl = append(cl, randPred())
			}
			cnf = append(cnf, cl)
		}
		pool[i] = cnf
	}

	areas := make([]*extract.AccessArea, n)
	for i := range areas {
		areas[i] = &extract.AccessArea{
			Relations: tableSets[r.Intn(len(tableSets))],
			CNF:       pool[r.Intn(poolSize)],
			Exact:     true,
		}
	}
	return areas, stats
}

// kernelPairBudget is the evaluation count per backend per scale: large
// enough to dwarf timer noise, small enough that the 100k-area run stays in
// CI budget.
const kernelPairBudget = 1_000_000

// benchKernelAreas times the pointer ProfileDistance loop against the flat
// SoA kernel over an identical LCG pair schedule and verifies the summed
// distances are bit-identical. Shared by the kernelperf experiment (synthetic
// areas) and clusterperf (the real mined areas).
func benchKernelAreas(mode distance.Mode, stats *schema.Stats, areas []*extract.AccessArea, pairs int, seed int64) *KernelPerfScale {
	n := len(areas)
	metric := &distance.Metric{Mode: mode, Stats: stats}
	kern := distance.NewKernel(mode)
	profiles := make([]*distance.Profile, n)
	for i, a := range areas {
		profiles[i] = metric.Profile(a)
		kern.Add(profiles[i])
	}

	// A fixed multiplicative LCG gives both backends the exact same pair
	// sequence without storing it; the replay is deterministic per (seed, n).
	// Each backend keeps its own replay state so the runs can interleave.
	lcgInit := func() uint64 { return uint64(seed)*6364136223846793005 + 1442695040888963407 }
	next := func(state *uint64) int {
		*state = *state*6364136223846793005 + 1442695040888963407
		return int((*state >> 33) % uint64(n))
	}

	sumPointer := 0.0
	pState := lcgInit()
	t0 := time.Now()
	for p := 0; p < pairs; p++ {
		i, j := next(&pState), next(&pState)
		sumPointer += metric.ProfileDistance(profiles[i], profiles[j])
	}
	pointerElapsed := time.Since(t0)

	// Drain the collection debt the pointer path's per-pair allocations
	// built up, outside either timer: the flat kernel allocates nothing, so
	// no GC cycle starts (or steals CPU) during its run.
	runtime.GC()

	exitsBefore := distance.KernelEarlyExits()
	sumFlat := 0.0
	fState := lcgInit()
	t0 = time.Now()
	for p := 0; p < pairs; p++ {
		i, j := next(&fState), next(&fState)
		sumFlat += kern.Distance(i, j)
	}
	flatElapsed := time.Since(t0)
	exits := distance.KernelEarlyExits() - exitsBefore

	out := &KernelPerfScale{
		Areas:         n,
		DistanceEvals: int64(pairs),
		Pointer: KernelPerfRun{
			Backend:     "pointer-profiles",
			ElapsedMS:   float64(pointerElapsed.Microseconds()) / 1e3,
			EvalsPerSec: float64(pairs) / pointerElapsed.Seconds(),
		},
		Flat: KernelPerfRun{
			Backend:     "flat-kernel",
			ElapsedMS:   float64(flatElapsed.Microseconds()) / 1e3,
			EvalsPerSec: float64(pairs) / flatElapsed.Seconds(),
		},
		EarlyExits:         exits,
		EarlyExitRatio:     float64(exits) / float64(pairs),
		IdenticalDistances: sumPointer == sumFlat,
	}
	if flatElapsed > 0 {
		out.SpeedupX = pointerElapsed.Seconds() / flatElapsed.Seconds()
	}
	return out
}

// RunKernelPerf executes the distance-kernel microbenchmark at each area
// scale (default 20k and 100k synthetic areas; a 1M-area run is documented
// in EXPERIMENTS.md for manual use). Every scale replays the same seeded
// ~1M-pair schedule through both backends.
func RunKernelPerf(seed int64, scales ...int) *KernelPerfResult {
	if len(scales) == 0 {
		scales = []int{20000, 100000}
	}
	out := &KernelPerfResult{Seed: seed, MinSpeedupX: 0}
	for _, n := range scales {
		out.Queries += n
		areas, stats := synthAreaPool(n, seed)
		sc := benchKernelAreas(distance.ModeEndpoint, stats, areas, kernelPairBudget, seed)
		out.Scales = append(out.Scales, sc)
		if out.MinSpeedupX == 0 || sc.SpeedupX < out.MinSpeedupX {
			out.MinSpeedupX = sc.SpeedupX
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Distance-kernel perf — flat SoA kernel vs pointer ProfileDistance (%d evals per backend per scale)\n",
		kernelPairBudget)
	for _, sc := range out.Scales {
		fmt.Fprintf(&b, "  %7d areas: pointer %10.1f ms (%12.0f evals/s)   flat %10.1f ms (%12.0f evals/s)   %5.2fx   early-exit %.4f   identical %v\n",
			sc.Areas, sc.Pointer.ElapsedMS, sc.Pointer.EvalsPerSec,
			sc.Flat.ElapsedMS, sc.Flat.EvalsPerSec, sc.SpeedupX, sc.EarlyExitRatio, sc.IdenticalDistances)
	}
	fmt.Fprintf(&b, "minimum speedup across scales: %.2fx (acceptance floor: 5x at 100k areas)\n", out.MinSpeedupX)
	out.Report = b.String()
	return out
}
