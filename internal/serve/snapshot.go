package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/schema"
)

// snapshotVersion guards against loading a snapshot written by an
// incompatible build.
const snapshotVersion = 1

// Snapshot is the on-disk service state: the access(a) registry first
// (restore order matters — representatives are re-extracted under it), then
// one representative statement per distinct area with accumulated weights
// and users, plus the cumulative pipeline statistics and ingest counters.
type Snapshot struct {
	Version   int                   `json:"version"`
	SavedAt   time.Time             `json:"saved_at"`
	Accepted  int64                 `json:"accepted"`
	Processed int64                 `json:"processed"`
	Epochs    int64                 `json:"epochs"`
	Pipeline  *qlog.Stats           `json:"pipeline"`
	Registry  *schema.StatsSnapshot `json:"registry"`
	Mining    *core.State           `json:"mining"`
	// WALOffset is the WAL position this snapshot covers: every record
	// below it is folded into Mining/Registry, so restart replays the log
	// from here. Processing order equals WAL append order (single pump,
	// admission under one mutex), so the processed count IS the offset.
	WALOffset uint64 `json:"wal_offset,omitempty"`
	// Traffic is the traffic-mining subsystem's state (absent when traffic
	// mining is off — classless snapshots are unchanged).
	Traffic *TrafficSnapshot `json:"traffic,omitempty"`
}

// WriteSnapshot atomically persists the current state: marshal to a
// temporary file in the target directory, fsync, rename, fsync the parent
// directory (without that last step the rename itself could be lost in a
// crash, resurrecting the previous snapshot against a compacted WAL). A
// crash mid-write leaves the previous snapshot intact.
func (s *Server) WriteSnapshot(path string) error {
	// snapMu excludes a mid-batch pump: the miner state exported here must
	// cover exactly the records the processed count says it does.
	s.snapMu.Lock()
	snap := &Snapshot{
		Version:   snapshotVersion,
		SavedAt:   time.Now().UTC(),
		Accepted:  s.accepted.Load(),
		Processed: s.processedCount(),
		Epochs:    s.epochs.Load(),
		Pipeline:  s.statsSnapshot(),
		Registry:  s.miner.Stats().Snapshot(),
		Mining:    s.inc.ExportState(),
	}
	snap.WALOffset = uint64(snap.Processed)
	snap.Traffic = s.exportTraffic()
	s.snapMu.Unlock()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	// The snapshot now durably covers everything below WALOffset: those
	// segments are cold, so the WAL may drop parse failures and dedupe
	// duplicates in them.
	if s.wal != nil {
		s.wal.SetCompactFloor(snap.WALOffset)
		if _, err := s.wal.Compact(); err != nil {
			return fmt.Errorf("serve: WAL compaction: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory, making renames within it crash-durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// restoreSnapshot loads state written by WriteSnapshot, returning the
// decoded snapshot so NewServer can replay the WAL tail past its covered
// offset before the anchoring epoch runs. A missing file is not an error —
// the server simply starts empty (nil, nil).
func (s *Server) restoreSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: corrupt snapshot %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("serve: snapshot %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	// Registry first: re-extraction of the representatives must see the
	// exact access(a) state the areas were mined under.
	s.miner.Stats().RestoreSnapshot(snap.Registry)
	if err := s.inc.RestoreState(snap.Mining); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s: %w", path, err)
	}
	if err := s.restoreTraffic(snap.Traffic); err != nil {
		return nil, fmt.Errorf("serve: snapshot %s: traffic: %w", path, err)
	}
	if snap.Pipeline != nil {
		s.mu.Lock()
		s.cum = *snap.Pipeline
		s.processed = snap.Processed
		s.mu.Unlock()
	}
	s.accepted.Store(snap.Accepted)
	s.epochs.Store(snap.Epochs)
	return &snap, nil
}
