package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// ErrorCategory classifies parse failures for the coverage statistics of
// Section 6.1 (errors vs SkyServer-specific functions vs non-SELECT
// statements).
type ErrorCategory int

const (
	CatSyntax      ErrorCategory = iota // malformed SQL
	CatUDF                              // table-valued user-defined function in FROM
	CatNonSelect                        // DDL / DECLARE / DML issued by administrators
	CatUnsupported                      // recognised but out-of-scope construct
)

func (c ErrorCategory) String() string {
	switch c {
	case CatSyntax:
		return "syntax"
	case CatUDF:
		return "udf"
	case CatNonSelect:
		return "non-select"
	case CatUnsupported:
		return "unsupported"
	default:
		return fmt.Sprintf("ErrorCategory(%d)", int(c))
	}
}

// ParseError is a parse failure with position and category.
type ParseError struct {
	Msg      string
	Line     int
	Col      int
	Category ErrorCategory
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse lexes and parses a single SQL statement. Trailing semicolons are
// permitted. Non-SELECT statements return (*OtherStatement, nil) so callers
// can classify them; genuinely malformed input returns a *ParseError (or
// *LexError from the lexer).
func Parse(src string) (Statement, error) {
	sp := parseStage.Start()
	defer sp.End()
	parseTotal.Inc()
	toks, err := NewLexer(src).Tokens()
	if err != nil {
		parseErrors.Inc()
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		parseErrors.Inc()
	}
	return st, err
}

// ParseSelect parses src and requires the result to be a SELECT statement.
func ParseSelect(src string) (*SelectStatement, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStatement)
	if !ok {
		return nil, &ParseError{Msg: "not a SELECT statement", Category: CatNonSelect, Line: 1, Col: 1}
	}
	return sel, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(cat ErrorCategory, format string, args ...any) error {
	t := p.cur()
	return &ParseError{Msg: fmt.Sprintf(format, args...), Line: t.Line, Col: t.Col, Category: cat}
}

// isKeyword reports whether the current token is the given keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == Keyword && t.Text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf(CatSyntax, "expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) isOp(op string) bool {
	t := p.cur()
	return t.Kind == Op && t.Text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf(CatSyntax, "expected %q, found %s", op, p.cur())
	}
	return nil
}

func (p *parser) parseStatement() (Statement, error) {
	// Skip leading semicolons.
	for p.acceptOp(";") {
	}
	t := p.cur()
	if t.Kind == EOF {
		return nil, p.errf(CatSyntax, "empty statement")
	}
	if t.Kind == Keyword {
		switch t.Text {
		case "SELECT":
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			for p.acceptOp(";") {
			}
			if p.cur().Kind != EOF {
				return nil, p.errf(CatSyntax, "unexpected trailing input: %s", p.cur())
			}
			return sel, nil
		case "CREATE", "DECLARE", "INSERT", "UPDATE", "DELETE", "DROP", "SET", "EXEC", "WITH":
			return &OtherStatement{Kind: t.Text}, nil
		}
	}
	return nil, p.errf(CatSyntax, "statement must begin with SELECT, found %s", t)
}

// parseSelect parses a SELECT statement body; the SELECT keyword is current.
func (p *parser) parseSelect() (*SelectStatement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStatement{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	if p.acceptKeyword("TOP") {
		// T-SQL allows TOP n, TOP (n), and TOP n PERCENT.
		paren := p.acceptOp("(")
		n, err := p.parseNumberValue()
		if err != nil {
			return nil, err
		}
		if paren {
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		if p.cur().Kind == Ident && strings.EqualFold(p.cur().Text, "PERCENT") {
			p.advance()
			sel.TopPercent = true
		}
		sel.Top = &n
	}
	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	sel.Select = items

	if p.isKeyword("INTO") {
		return nil, p.errf(CatUnsupported, "SELECT INTO is not supported")
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseTableList()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseNumberValue()
		if err != nil {
			return nil, err
		}
		sel.Limit = &n
		// MySQL "LIMIT offset, count".
		if p.acceptOp(",") {
			n2, err := p.parseNumberValue()
			if err != nil {
				return nil, err
			}
			sel.Limit = &n2
		}
	}
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		arm, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		// Right-nested unions flatten into a single arm list.
		arms := append([]UnionArm{{All: all, Select: arm}}, arm.Unions...)
		arm.Unions = nil
		sel.Unions = append(sel.Unions, arms...)
	}
	return sel, nil
}

func (p *parser) parseNumberValue() (float64, error) {
	t := p.cur()
	if t.Kind != Number {
		return 0, p.errf(CatSyntax, "expected number, found %s", t)
	}
	p.advance()
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, p.errf(CatSyntax, "bad number %q: %v", t.Text, err)
	}
	return v, nil
}

func (p *parser) parseSelectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.acceptOp(",") {
			return items, nil
		}
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident '.' '*'
	if p.cur().Kind == Ident && p.peek().Kind == Op && p.peek().Text == "." {
		// Lookahead two tokens for '*'.
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == Op && p.toks[p.pos+2].Text == "*" {
			tbl := p.advance().Text
			p.advance() // '.'
			p.advance() // '*'
			return SelectItem{Star: true, StarTable: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.cur()
		if t.Kind != Ident && t.Kind != String {
			return SelectItem{}, p.errf(CatSyntax, "expected alias after AS, found %s", t)
		}
		p.advance()
		item.Alias = t.Text
	} else if p.cur().Kind == Ident {
		item.Alias = p.advance().Text
	}
	return item, nil
}

func (p *parser) parseTableList() ([]TableExpr, error) {
	var out []TableExpr
	for {
		te, err := p.parseJoinTree()
		if err != nil {
			return nil, err
		}
		out = append(out, te)
		if !p.acceptOp(",") {
			return out, nil
		}
	}
}

// parseJoinTree parses a table primary followed by any number of join
// clauses, producing a left-deep tree.
func (p *parser) parseJoinTree() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		jt, natural, isJoin, err := p.parseJoinHead()
		if err != nil {
			return nil, err
		}
		if !isJoin {
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Natural: natural, Left: left, Right: right}
		if p.acceptKeyword("ON") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		} else if jt != CrossJoin && !natural {
			return nil, p.errf(CatSyntax, "expected ON after %s", jt)
		}
		left = j
	}
}

// parseJoinHead consumes an optional join specifier. It returns isJoin=false
// when the current token does not start a join clause.
func (p *parser) parseJoinHead() (JoinType, bool, bool, error) {
	natural := p.acceptKeyword("NATURAL")
	switch {
	case p.acceptKeyword("JOIN"):
		if natural {
			return InnerJoin, true, true, nil
		}
		return InnerJoin, false, true, nil
	case p.acceptKeyword("INNER"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, false, err
		}
		return InnerJoin, natural, true, nil
	case p.acceptKeyword("CROSS"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, false, err
		}
		return CrossJoin, natural, true, nil
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, false, err
		}
		return LeftOuterJoin, natural, true, nil
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, false, err
		}
		return RightOuterJoin, natural, true, nil
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, false, err
		}
		return FullOuterJoin, natural, true, nil
	}
	if natural {
		return 0, false, false, p.errf(CatSyntax, "expected JOIN after NATURAL")
	}
	return 0, false, false, nil
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptOp("(") {
		if p.isKeyword("SELECT") {
			sub, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			alias := ""
			p.acceptKeyword("AS")
			if p.cur().Kind == Ident {
				alias = p.advance().Text
			}
			return &SubqueryTable{Select: sub, Alias: alias}, nil
		}
		te, err := p.parseJoinTree()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	if p.cur().Kind != Ident {
		return nil, p.errf(CatSyntax, "expected table name, found %s", p.cur())
	}
	name, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	if p.isOp("(") {
		// Table-valued function such as dbo.fGetNearbyObjEq: these are
		// SkyServer-specific UDFs that JSqlParser also rejected (§6.1).
		return nil, p.errf(CatUDF, "table-valued function %q is not supported", name)
	}
	tn := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		if p.cur().Kind != Ident {
			return nil, p.errf(CatSyntax, "expected alias after AS, found %s", p.cur())
		}
		tn.Alias = p.advance().Text
	} else if p.cur().Kind == Ident {
		tn.Alias = p.advance().Text
	}
	return tn, nil
}

// parseSelectBody parses a SELECT whose keyword is current, without the
// trailing-input check (used for subqueries).
func (p *parser) parseSelectBody() (*SelectStatement, error) {
	return p.parseSelect()
}

// parseDottedName parses ident ('.' ident)*, joining the parts with dots.
func (p *parser) parseDottedName() (string, error) {
	parts := []string{p.advance().Text}
	for p.isOp(".") && p.peek().Kind == Ident {
		p.advance() // '.'
		parts = append(parts, p.advance().Text)
	}
	return strings.Join(parts, "."), nil
}

// --- expressions ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

var comparisonOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// NOT BETWEEN / NOT IN / NOT LIKE.
	if p.isKeyword("NOT") {
		next := p.peek()
		if next.Kind == Keyword && (next.Text == "BETWEEN" || next.Text == "IN" || next.Text == "LIKE") {
			p.advance() // NOT
			return p.parsePredicateTail(left, true)
		}
		return left, nil
	}
	if p.isKeyword("BETWEEN") || p.isKeyword("IN") || p.isKeyword("LIKE") {
		return p.parsePredicateTail(left, false)
	}
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Not: not, X: left}, nil
	}
	t := p.cur()
	if t.Kind == Op && comparisonOps[t.Text] {
		op := p.advance().Text
		// Quantified comparison: op ANY|SOME|ALL (subquery).
		if p.isKeyword("ANY") || p.isKeyword("SOME") || p.isKeyword("ALL") {
			all := p.cur().Text == "ALL"
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			if !p.isKeyword("SELECT") {
				return nil, p.errf(CatSyntax, "expected subquery after quantifier")
			}
			sub, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &QuantifiedExpr{X: left, Op: op, All: all, Sub: sub}, nil
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parsePredicateTail(left Expr, not bool) (Expr, error) {
	switch {
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Not: not, X: left, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.isKeyword("SELECT") {
			sub, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InSubqueryExpr{Not: not, X: left, Sub: sub}, nil
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InListExpr{Not: not, X: left, List: list}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if p.acceptKeyword("ESCAPE") {
			if _, err := p.parseAdditive(); err != nil {
				return nil, err
			}
		}
		return &LikeExpr{Not: not, X: left, Pattern: pat}, nil
	}
	return nil, p.errf(CatSyntax, "expected BETWEEN, IN or LIKE, found %s", p.cur())
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == Op && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			op := p.advance().Text
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == Op && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			op := p.advance().Text
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals so "-5" compares as a constant.
		if n, ok := x.(*NumberLit); ok {
			return &NumberLit{Value: -n.Value, Text: "-" + n.Text, Slot: n.Slot, NegDepth: n.NegDepth + 1}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Number:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(CatSyntax, "bad number %q: %v", t.Text, err)
		}
		return &NumberLit{Value: v, Text: t.Text, Slot: t.Slot}, nil
	case String:
		p.advance()
		return &StringLit{Value: t.Text, Slot: t.Slot}, nil
	case Param:
		p.advance()
		return &ParamRef{Name: t.Text}, nil
	case Keyword:
		switch t.Text {
		case "NULL":
			p.advance()
			return &NullLit{}, nil
		case "EXISTS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			if !p.isKeyword("SELECT") {
				return nil, p.errf(CatSyntax, "expected subquery after EXISTS")
			}
			sub, err := p.parseSelectBody()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &ExistsExpr{Sub: sub}, nil
		case "CASE":
			return p.parseCase()
		case "LEFT", "RIGHT":
			// LEFT(s, n) / RIGHT(s, n) string functions collide with join
			// keywords; accept them as function calls when followed by '('.
			if p.peek().Kind == Op && p.peek().Text == "(" {
				name := p.advance().Text
				return p.parseFuncArgs(name)
			}
		}
		return nil, p.errf(CatSyntax, "unexpected keyword %s in expression", t.Text)
	case Ident:
		name, err := p.parseDottedName()
		if err != nil {
			return nil, err
		}
		if p.isOp("(") {
			return p.parseFuncArgs(name)
		}
		return columnRefFromDotted(name), nil
	case Op:
		if t.Text == "(" {
			p.advance()
			if p.isKeyword("SELECT") {
				sub, err := p.parseSelectBody()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			// Bare star as an expression only occurs in COUNT(*) which is
			// handled by parseFuncArgs; elsewhere it is an error.
			return nil, p.errf(CatSyntax, "unexpected '*'")
		}
	}
	return nil, p.errf(CatSyntax, "unexpected token %s in expression", t)
}

func (p *parser) parseFuncArgs(name string) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if p.acceptOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptOp(")") {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{When: when, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf(CatSyntax, "CASE without WHEN")
	}
	if p.acceptKeyword("ELSE") {
		els, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = els
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

// columnRefFromDotted splits a dotted name into table qualifier and column.
// Multi-part prefixes (db.schema.table.column) keep only the last qualifier,
// which is how the extraction layer resolves SkyServer's dbo.-prefixed
// names.
func columnRefFromDotted(name string) *ColumnRef {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return &ColumnRef{Name: name}
	}
	qualifier := name[:i]
	if j := strings.LastIndex(qualifier, "."); j >= 0 {
		qualifier = qualifier[j+1:]
	}
	return &ColumnRef{Table: qualifier, Name: name[i+1:]}
}
