GO ?= go

.PHONY: build test vet racecheck bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel region-query, pivot-index, and pair-cache code paths must stay
# race-clean; qlog covers the staged pipeline's worker fan-out.
racecheck:
	$(GO) test -race ./internal/dbscan/... ./internal/distance/... ./internal/qlog/...

# bench regenerates BENCH_clustering.json (brute-force vs pivot-index mining
# at the 20k default mix). vet + racecheck gate it so perf numbers are never
# recorded off racy code.
bench: vet racecheck
	$(GO) run ./cmd/benchreport -exp clusterperf

clean:
	$(GO) clean ./...
