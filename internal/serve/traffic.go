package serve

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/qlog"
	"repro/internal/traffic"
)

// classCounts is one traffic class's slice of the pipeline counters: how
// many processed records the class received and how many of them produced
// an access area. Together they synthesise the class report's statement /
// extraction header — the per-class partition of the global pipeline stats.
type classCounts struct {
	total     atomic.Int64
	extracted atomic.Int64
}

// trafficState bundles the traffic-mining subsystem: the online classifier
// and interface miner (fed by the pump in processing order, under tmu), one
// substrate-sharing incremental miner per class (pump feeds, epochs
// recluster), and the drift detector (epoch lock).
type trafficState struct {
	cfg traffic.Config

	// tmu guards classifier and ifaces. The pump observes under it in
	// processing order — which equals admission order (single consumer) —
	// so the class of every record is a pure function of the ingest script
	// and WAL replay reproduces it exactly.
	tmu        sync.Mutex
	classifier *traffic.Classifier
	ifaces     *traffic.Interfaces

	// sub is the shared distance substrate: the global miner and the three
	// class miners cluster overlapping area populations, so each pair's
	// distance is computed once, whoever needs it first.
	sub    *core.Substrate
	incs   map[string]*core.Incremental
	counts map[string]*classCounts

	// drift state is guarded by Server.epochMu: only forced (flush /
	// shutdown) epochs observe drift, so the event log is deterministic for
	// a given ingest → flush script. driftOn stays false until NewServer's
	// anchoring epoch has run — restore must not diff against itself.
	drift       *traffic.Drift
	driftEpochs int64
	driftOn     bool
	driftEvents atomic.Int64
}

func newTrafficState(cfg traffic.Config, miner *core.Miner) *trafficState {
	t := &trafficState{
		cfg:        cfg,
		classifier: traffic.NewClassifier(cfg),
		ifaces:     traffic.NewInterfaces(cfg.InterfaceMaxFPs, cfg.InterfaceMaxSamples),
		drift:      traffic.NewDrift(cfg.DriftMaxEvents),
		sub:        miner.Substrate(),
		incs:       make(map[string]*core.Incremental, len(traffic.Classes)),
		counts:     make(map[string]*classCounts, len(traffic.Classes)),
	}
	for _, cls := range traffic.Classes {
		t.incs[cls] = miner.IncrementalShared(t.sub)
		t.counts[cls] = &classCounts{}
	}
	return t
}

// classifyBatch assigns a traffic class to every record of one batch, in
// order, before the batch enters the pipeline. Explicitly tagged records
// keep their tag but are still observed — the classifier's state must be a
// function of the full processed sequence for WAL replay to reproduce it.
// Records arriving without the admission-time fingerprint pass (no WAL, or
// WAL replay) are fingerprinted here; the pipeline reuses the pass.
func (s *Server) classifyBatch(batch []qlog.Record) {
	t := s.traffic
	t.tmu.Lock()
	defer t.tmu.Unlock()
	for i := range batch {
		rec := &batch[i]
		if !rec.FPValid {
			if fp, lits, ok := s.fingerprint(rec.SQL); ok {
				rec.FPValid, rec.FP, rec.Lits = true, fp, lits
			}
		}
		var fp uint64
		if rec.FPValid {
			fp = rec.FP
		}
		cls := t.classifier.Observe(rec.User, rec.Time, fp, rec.SQL)
		if !traffic.ValidClass(rec.Class) {
			rec.Class = cls
		}
		if rec.FPValid {
			t.ifaces.Observe(rec.FP, rec.SQL, rec.Lits)
		}
		t.counts[rec.Class].total.Add(1)
	}
}

// extractBatch runs one batch through classification (when traffic mining
// is on) and the extraction pipeline, feeding the global miner and — per
// record class — the class miners. Both the pump and WAL replay drain
// through it, so live and replayed runs classify and mine identically.
func (s *Server) extractBatch(batch []qlog.Record) *qlog.Stats {
	if s.traffic != nil {
		s.classifyBatch(batch)
	}
	return s.pipe.RunStream(s.baseCtx, qlog.SliceSource(batch), func(ar qlog.AreaRecord) {
		if s.inc.Add(&ar) {
			s.newSinceEpoch.Add(1)
		}
		if t := s.traffic; t != nil {
			if cinc := t.incs[ar.Record.Class]; cinc != nil {
				cinc.Add(&ar)
				t.counts[ar.Record.Class].extracted.Add(1)
			}
		}
	})
}

// reclusterClasses runs the per-class slice of one epoch. Caller holds
// epochMu; the global recluster has already interned every area into the
// shared substrate, so the class reclusters are mostly cache lookups. Drift
// is observed only at forced epochs (deterministic boundaries) and only
// once the server has anchored.
func (s *Server) reclusterClasses(force bool) map[string]*core.Result {
	t := s.traffic
	classRes := make(map[string]*core.Result, len(traffic.Classes))
	for _, cls := range traffic.Classes {
		inc := t.incs[cls]
		var r *core.Result
		if force {
			r = inc.Recluster()
		} else {
			r = inc.ReclusterAuto()
		}
		cc := t.counts[cls]
		r.PipelineStats = &qlog.Stats{
			Total:     int(cc.total.Load()),
			Extracted: int(cc.extracted.Load()),
		}
		if s.cfg.Coverage != nil {
			r.AttachCoverage(s.cfg.Coverage)
		}
		classRes[cls] = r
	}
	if force && t.driftOn {
		t.driftEpochs++
		for _, cls := range traffic.Classes {
			ev := t.drift.Observe(cls, t.driftEpochs, classRes[cls].Clusters)
			t.driftEvents.Add(int64(len(ev)))
		}
	}
	return classRes
}

// TrafficEnabled reports whether the server mines per traffic class.
func (s *Server) TrafficEnabled() bool { return s.traffic != nil }

// LatestClass exposes the most recent epoch's clustering for one traffic
// class (nil before the first epoch or with traffic mining off). Like
// Latest, the Result must be treated as immutable.
func (s *Server) LatestClass(class string) (*core.Result, int64) {
	s.resMu.RLock()
	defer s.resMu.RUnlock()
	return s.classRes[class], s.resGen
}

// DriftEvents returns the retained drift-event log, optionally filtered to
// one class ("" = all). The slice is a copy.
func (s *Server) DriftEvents(class string) []traffic.Event {
	if s.traffic == nil {
		return nil
	}
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.traffic.drift.Events(class)
}

// RenderInterfaces renders the top-K hottest statement templates as
// parameterized query interfaces (nil with traffic mining off).
func (s *Server) RenderInterfaces(top int) []traffic.Interface {
	t := s.traffic
	if t == nil {
		return nil
	}
	t.tmu.Lock()
	defer t.tmu.Unlock()
	return t.ifaces.Render(top, s.pipe.Cache)
}

// TrackedInterfaces reports how many distinct statement fingerprints the
// interface miner tracks (0 with traffic mining off).
func (s *Server) TrackedInterfaces() int {
	if s.traffic == nil {
		return 0
	}
	return s.traffic.trackedInterfaces()
}

// TrafficUserClasses returns every tracked user's final class — the
// per-user judgement the perf harness scores against ground truth.
func (s *Server) TrafficUserClasses() map[string]string {
	t := s.traffic
	if t == nil {
		return nil
	}
	t.tmu.Lock()
	defer t.tmu.Unlock()
	return t.classifier.UserClasses()
}

// handleDrift serves GET /drift: the deterministic per-class interest-drift
// event log (?class=bot|human|admin filters).
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.traffic == nil {
		http.Error(w, "traffic mining not configured", http.StatusConflict)
		return
	}
	class := r.URL.Query().Get("class")
	if class != "" && !traffic.ValidClass(class) {
		http.Error(w, "class must be bot, human or admin", http.StatusBadRequest)
		return
	}
	events := s.DriftEvents(class)
	writeJSON(w, http.StatusOK, map[string]any{
		"events": events,
		"count":  len(events),
	})
}

// handleInterfaces serves GET /interfaces: the top-K hottest statement
// fingerprints rendered as parameterized query interfaces (?top=N, default
// 10).
func (s *Server) handleInterfaces(w http.ResponseWriter, r *http.Request) {
	if s.traffic == nil {
		http.Error(w, "traffic mining not configured", http.StatusConflict)
		return
	}
	top := 10
	if q := r.URL.Query().Get("top"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	ifaces := s.RenderInterfaces(top)
	writeJSON(w, http.StatusOK, map[string]any{
		"interfaces": ifaces,
		"tracked":    s.TrackedInterfaces(),
	})
}

func (t *trafficState) trackedInterfaces() int {
	t.tmu.Lock()
	defer t.tmu.Unlock()
	return t.ifaces.Len()
}

// TrafficSnapshot is the snapshot section for the traffic subsystem: the
// classifier's per-user state, the interface miner, the drift detector, and
// one mining state per class. All of it covers exactly the processed
// records (classification happens in the pump), so WAL replay from the
// snapshot's offset continues it without double-observing.
type TrafficSnapshot struct {
	Classifier  *traffic.ClassifierState      `json:"classifier,omitempty"`
	Interfaces  *traffic.InterfacesState      `json:"interfaces,omitempty"`
	Drift       *traffic.DriftState           `json:"drift,omitempty"`
	DriftEpochs int64                         `json:"drift_epochs,omitempty"`
	Mining      map[string]*core.State        `json:"mining,omitempty"`
	Counts      map[string]TrafficClassCounts `json:"counts,omitempty"`
}

// TrafficClassCounts is one class's serialised pipeline counters.
type TrafficClassCounts struct {
	Total     int64 `json:"total"`
	Extracted int64 `json:"extracted"`
}

// exportTraffic builds the snapshot section. Caller holds snapMu (which
// excludes the pump); drift state is read under epochMu.
func (s *Server) exportTraffic() *TrafficSnapshot {
	t := s.traffic
	if t == nil {
		return nil
	}
	t.tmu.Lock()
	snap := &TrafficSnapshot{
		Classifier: t.classifier.ExportState(),
		Interfaces: t.ifaces.ExportState(),
		Mining:     make(map[string]*core.State, len(traffic.Classes)),
		Counts:     make(map[string]TrafficClassCounts, len(traffic.Classes)),
	}
	t.tmu.Unlock()
	for _, cls := range traffic.Classes {
		snap.Mining[cls] = t.incs[cls].ExportState()
		cc := t.counts[cls]
		snap.Counts[cls] = TrafficClassCounts{
			Total:     cc.total.Load(),
			Extracted: cc.extracted.Load(),
		}
	}
	s.epochMu.Lock()
	snap.Drift = t.drift.ExportState()
	snap.DriftEpochs = t.driftEpochs
	s.epochMu.Unlock()
	return snap
}

// restoreTraffic loads the snapshot section. Runs inside restoreSnapshot,
// before any worker starts, with the registry already restored.
func (s *Server) restoreTraffic(snap *TrafficSnapshot) error {
	t := s.traffic
	if t == nil || snap == nil {
		return nil
	}
	if snap.Classifier != nil {
		t.classifier.RestoreState(snap.Classifier)
	}
	if snap.Interfaces != nil {
		t.ifaces.RestoreState(snap.Interfaces)
	}
	if snap.Drift != nil {
		t.drift.RestoreState(snap.Drift)
		t.driftEvents.Store(int64(len(snap.Drift.Events)))
	}
	t.driftEpochs = snap.DriftEpochs
	for _, cls := range traffic.Classes {
		if st := snap.Mining[cls]; st != nil {
			if err := t.incs[cls].RestoreState(st); err != nil {
				return err
			}
		}
		if cc, ok := snap.Counts[cls]; ok {
			t.counts[cls].total.Store(cc.Total)
			t.counts[cls].extracted.Store(cc.Extracted)
		}
	}
	return nil
}
