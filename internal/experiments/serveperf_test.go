package experiments

import "testing"

// The serving load harness at a reduced scale must pass all three
// correctness gates: the served report matches the batch miner
// byte-for-byte, graceful shutdown loses no accepted record, and the
// snapshot restores to the identical report.
func TestServePerfGates(t *testing.T) {
	env := NewEnvRows(3000, 42, 400)
	res := env.RunServePerf()
	if res.Report == "" {
		t.Fatal("serveperf produced no report")
	}
	t.Log("\n" + res.Report)
	if !res.MatchesBatch {
		t.Error("served report does not match the batch miner")
	}
	if !res.ZeroLossShutdown {
		t.Error("graceful shutdown lost accepted records")
	}
	if !res.SnapshotRoundTrip {
		t.Error("snapshot restore did not round-trip the report")
	}
	if res.Epochs < 2 {
		t.Errorf("expected multiple epochs, got %d", res.Epochs)
	}
	if res.ThroughputRPS <= 0 || res.LatencyP50MS <= 0 {
		t.Errorf("implausible load numbers: %.0f rec/s, p50 %.3fms", res.ThroughputRPS, res.LatencyP50MS)
	}
	if res.FinalEpochReuse <= 0 && res.Epochs > 1 {
		t.Errorf("final epoch reused nothing (reuse ratio %.3f)", res.FinalEpochReuse)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vals, 0.5); p != 5.5 {
		t.Errorf("p50 = %v, want 5.5", p)
	}
	if p := percentile(vals, 0.99); p < 9.9 || p > 10 {
		t.Errorf("p99 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}
