// Package schema models the database schema underlying the data space of
// Section 2.1: relations, typed columns and their domains. The data space of
// a relation is the Cartesian product of its column domains; content(R) is
// the minimum bounding box of the actual data; empty(R) = space(R) \
// content(R). The package also hosts the access(a) statistics registry of
// Section 5.3, which the distance function needs for normalisation.
package schema

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/interval"
)

// ColumnType classifies a column as numeric or categorical; the two kinds
// get different content/access representations (interval vs value set) per
// Section 2.1.
type ColumnType int

const (
	Numeric ColumnType = iota
	Categorical
)

func (t ColumnType) String() string {
	switch t {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColumnType

	// Domain is the type-level domain dom(a) for numeric columns. A zero
	// Domain means the full real line (the paper's "large enough to be
	// considered (-inf, +inf)" assumption before Lemma 2).
	Domain interval.Interval

	// Values is the categorical domain for Categorical columns, if known.
	Values []string
}

// EffectiveDomain returns dom(a) for a numeric column, defaulting to the
// full line when unspecified.
func (c *Column) EffectiveDomain() interval.Interval {
	if c.Type != Numeric {
		return interval.Full()
	}
	var zero interval.Interval
	if c.Domain == zero {
		return interval.Full()
	}
	return c.Domain
}

// Relation is a named relation with ordered columns.
type Relation struct {
	Name    string
	Columns []Column

	byName map[string]*Column
}

// NewRelation builds a relation and indexes its columns. Column lookups are
// case-insensitive, matching the behaviour of SQL Server (SkyServer's
// engine).
func NewRelation(name string, cols ...Column) *Relation {
	r := &Relation{Name: name, Columns: cols, byName: make(map[string]*Column, len(cols))}
	for i := range r.Columns {
		r.byName[strings.ToLower(r.Columns[i].Name)] = &r.Columns[i]
	}
	return r
}

// Column returns the column with the given (case-insensitive) name, or nil.
func (r *Relation) Column(name string) *Column {
	return r.byName[strings.ToLower(name)]
}

// QualifiedColumn returns the canonical fully-qualified name "Relation.column"
// used throughout the pipeline as a dimension key.
func (r *Relation) QualifiedColumn(name string) string {
	if c := r.Column(name); c != nil {
		return r.Name + "." + c.Name
	}
	return r.Name + "." + name
}

// Schema is a set of relations with case-insensitive lookup.
type Schema struct {
	relations map[string]*Relation
	order     []string // insertion order of canonical names
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{relations: make(map[string]*Relation)}
}

// Add registers a relation. Re-adding a relation with the same
// (case-insensitive) name replaces it.
func (s *Schema) Add(r *Relation) {
	key := strings.ToLower(r.Name)
	if _, exists := s.relations[key]; !exists {
		s.order = append(s.order, key)
	}
	s.relations[key] = r
}

// Relation returns the relation with the given (case-insensitive) name, or
// nil if unknown.
func (s *Schema) Relation(name string) *Relation {
	return s.relations[strings.ToLower(name)]
}

// Relations returns all relations in insertion order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, s.relations[key])
	}
	return out
}

// CanonicalTable resolves name to the canonical relation name, or returns
// name unchanged (preserving what the query wrote) when the relation is
// unknown to the schema.
func (s *Schema) CanonicalTable(name string) string {
	if r := s.Relation(name); r != nil {
		return r.Name
	}
	return name
}

// ResolveColumn resolves a possibly-unqualified column reference against the
// given candidate relations, returning the canonical "Relation.column" name.
// When the column name is ambiguous or unknown the first candidate relation
// is used as a best-effort owner, mirroring the paper's pragmatic handling
// of a log that contains queries against stale schema versions.
func (s *Schema) ResolveColumn(column string, candidates []string) string {
	for _, rel := range candidates {
		if r := s.Relation(rel); r != nil && r.Column(column) != nil {
			return r.QualifiedColumn(column)
		}
	}
	if len(candidates) > 0 {
		return s.CanonicalTable(candidates[0]) + "." + column
	}
	return column
}

// SplitQualified splits a canonical "Relation.column" name. ok is false when
// the name has no dot.
func SplitQualified(name string) (rel, col string, ok bool) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}

// ContentBox returns the content(R) bounding boxes of every relation merged
// into one box keyed by qualified column names, using the provided per-column
// content statistics.
func ContentBox(stats *Stats) *interval.Box {
	box := interval.NewBox()
	for name, cs := range stats.numeric {
		box.Set(name, cs.content)
	}
	return box
}

// sortedKeys is a small helper for deterministic iteration in tests/String.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// isFinite reports whether v is a usable finite float.
func isFinite(v float64) bool {
	return !math.IsInf(v, 0) && !math.IsNaN(v)
}
